//! `ppsim-runner` — parallel, cache-aware experiment execution.
//!
//! The runner owns the path from "a grid of experiment cells" to "a vector
//! of results": it probes the on-disk cache, memoizes compilation per
//! (benchmark, compile-flags), fans cache misses across a deterministic
//! work-stealing thread pool, stores fresh results back, and assembles
//! everything in canonical grid order. Reports built from a grid are
//! byte-identical for any `--jobs N` and for cold vs. warm caches; only
//! the telemetry (wall times, hit counts) differs, and that never enters
//! the deterministic report stream.
//!
//! ```text
//! Vec<Job> ──cache probe──▶ misses ──pool──▶ simulate ──store──▶
//!          ──────────────── hits ─────────────────────▶ assemble (grid order)
//! ```

pub mod cache;
pub mod hash;
pub mod inflight;
pub mod job;
pub mod pool;

/// The hand-rolled JSON value (moved to `ppsim-obs`; re-exported so
/// `ppsim_runner::json::Json` paths keep working).
pub use ppsim_obs::json;

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use ppsim_compiler::{compile, spec2000_suite, CompileOptions, Compiled, WorkloadSpec};
use ppsim_isa::{Checkpoint, Machine};
use ppsim_pipeline::{LaneSet, RunResult, SampleSpec, SimOptions, TraceBuffer, TraceCursor};

pub use cache::{CacheUsage, DiskCache};
pub use inflight::Inflight;
pub use job::{Job, JobResult, SampleSlice, TraceId};
pub use ppsim_obs::Json;

/// Upper bound on explicit worker counts. Worker threads each cost a
/// stack and scheduler churn; anything beyond this is a typo, not a
/// machine.
pub const MAX_JOBS: usize = 1024;

/// How a [`Runner`] executes grids.
#[derive(Clone, Debug)]
pub struct RunnerOptions {
    /// Worker threads; `0` means "one per available CPU".
    pub jobs: usize,
    /// Consult and populate the on-disk result cache.
    pub cache: bool,
    /// Cache directory override (`None` = [`DiskCache::default_dir`]).
    pub cache_dir: Option<PathBuf>,
    /// Drive simulations from a shared captured trace (capture the
    /// functional stream once per binary, replay it per cell). Disable to
    /// force the legacy inline-machine path (`--no-replay`).
    pub replay: bool,
    /// Fuse cache-missing replay cells that share one stream (same
    /// binary, commit budget and sample window) into a single
    /// lane-parallel pass over the trace (`ppsim_pipeline::LaneSet`).
    /// Disable to run every cell as its own job (`--no-fuse`). Results
    /// and cache keys are identical either way; only wall time and
    /// telemetry differ.
    pub fuse: bool,
    /// Byte budget for the on-disk cache (`None` = unbounded). When set,
    /// every store evicts least-recently-used entries down to the cap.
    pub cache_max_bytes: Option<u64>,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            jobs: 0,
            cache: true,
            cache_dir: None,
            replay: true,
            fuse: true,
            cache_max_bytes: None,
        }
    }
}

impl RunnerOptions {
    /// Parses `--jobs N`, `--no-cache`, `--cache-dir P`,
    /// `--cache-max-bytes B`, `--no-replay` and `--no-fuse` from a raw
    /// argument list, returning the validated options and the unconsumed
    /// arguments.
    pub fn from_args(args: &[String]) -> Result<(RunnerOptions, Vec<String>), String> {
        let mut opts = RunnerOptions::default();
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--jobs" | "-j" => {
                    let v = it.next().ok_or("--jobs needs a value")?;
                    let n: usize = v.parse().map_err(|_| format!("bad --jobs value `{v}`"))?;
                    if n == 0 {
                        return Err(
                            "--jobs must be at least 1 (omit the flag for one worker per CPU)"
                                .to_string(),
                        );
                    }
                    opts.jobs = n;
                }
                "--no-cache" => opts.cache = false,
                "--cache-dir" => {
                    let v = it.next().ok_or("--cache-dir needs a value")?;
                    opts.cache_dir = Some(PathBuf::from(v));
                }
                "--cache-max-bytes" => {
                    let v = it.next().ok_or("--cache-max-bytes needs a value")?;
                    let b: u64 = v
                        .parse()
                        .map_err(|_| format!("bad --cache-max-bytes value `{v}`"))?;
                    opts.cache_max_bytes = Some(b);
                }
                "--no-replay" => opts.replay = false,
                "--no-fuse" => opts.fuse = false,
                _ => rest.push(a.clone()),
            }
        }
        opts.validate()?;
        Ok((opts, rest))
    }

    /// Rejects nonsensical combinations before they reach the pool: a
    /// worker count beyond [`MAX_JOBS`], an empty cache-directory path,
    /// or a byte budget on a disabled cache. `jobs == 0` remains the
    /// *programmatic* "one worker per CPU" default — only the explicit
    /// CLI flag refuses it (in [`RunnerOptions::from_args`]).
    pub fn validate(&self) -> Result<(), String> {
        if self.jobs > MAX_JOBS {
            return Err(format!(
                "--jobs {} is beyond the supported maximum of {MAX_JOBS}",
                self.jobs
            ));
        }
        if let Some(dir) = &self.cache_dir {
            if dir.as_os_str().is_empty() {
                return Err("--cache-dir must not be empty".to_string());
            }
        }
        if self.cache_max_bytes.is_some() && !self.cache {
            return Err("--cache-max-bytes is meaningless with --no-cache".to_string());
        }
        Ok(())
    }

    fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Execution telemetry for one grid (and cumulatively for a runner's
/// lifetime). Telemetry is *observational*: it never feeds back into
/// results or report bytes.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    /// Jobs requested.
    pub jobs_total: u64,
    /// Jobs actually simulated (cache misses).
    pub jobs_run: u64,
    /// Jobs served from the on-disk cache.
    pub cache_hits: u64,
    /// Wall time of simulated jobs, summed (µs).
    pub wall_micros_total: u64,
    /// Fresh trace captures performed (one per (binary, budget) key).
    pub captures: u64,
    /// Replay jobs whose trace came from the in-process memo.
    pub trace_memo_hits: u64,
    /// Wall time spent capturing traces, summed (µs).
    pub capture_micros_total: u64,
    /// Entries dropped from the in-process memos (compile, trace,
    /// checkpoint) by the size caps — relevant for long-lived runners
    /// (`ppsim serve`), always 0 for one-shot grids.
    pub memo_evictions: u64,
    /// Fused lane-parallel trace passes executed (bundles of ≥ 2 cells
    /// sharing one stream).
    pub fused_passes: u64,
    /// Cells executed inside fused passes (the lanes). `fused_lanes /
    /// fused_passes` is the lanes-per-pass ratio; cells run solo (no
    /// fusable sibling, `--no-fuse`, or the inline path) appear in
    /// `jobs_run` but not here.
    pub fused_lanes: u64,
    /// Per-simulated-job timing phases, in grid order. Capped at
    /// [`Telemetry::MAX_PER_JOB`] entries (oldest dropped) so a
    /// long-running daemon's telemetry stays bounded.
    pub per_job: Vec<JobTiming>,
}

/// Wall-time phases of one simulated job: compilation (0 when the memo
/// already held the binary), trace capture (0 on a trace-memo hit or on
/// the inline path), simulation, and everything else (cache store,
/// bookkeeping) folded into the total.
#[derive(Clone, Debug, Default)]
pub struct JobTiming {
    /// The job's [`Job::label`].
    pub label: String,
    /// End-to-end wall time (µs).
    pub wall_micros: u64,
    /// Time spent compiling the benchmark (µs).
    pub compile_micros: u64,
    /// Time spent capturing the functional trace (µs).
    pub capture_micros: u64,
    /// Time spent inside `Simulator::run` (µs).
    pub sim_micros: u64,
}

impl Telemetry {
    /// Upper bound on retained [`Telemetry::per_job`] rows.
    pub const MAX_PER_JOB: usize = 1024;

    fn absorb(&mut self, jobs: &[Job], results: &[JobResult]) {
        self.jobs_total += jobs.len() as u64;
        for (job, r) in jobs.iter().zip(results) {
            if r.from_cache {
                self.cache_hits += 1;
            } else {
                self.jobs_run += 1;
                self.wall_micros_total += r.wall_micros;
                if r.capture_micros > 0 {
                    self.captures += 1;
                    self.capture_micros_total += r.capture_micros;
                }
                if r.trace_memo_hit {
                    self.trace_memo_hits += 1;
                }
                self.per_job.push(JobTiming {
                    label: job.label(),
                    wall_micros: r.wall_micros,
                    compile_micros: r.compile_micros,
                    capture_micros: r.capture_micros,
                    sim_micros: r.sim_micros,
                });
            }
        }
        if self.per_job.len() > Self::MAX_PER_JOB {
            let excess = self.per_job.len() - Self::MAX_PER_JOB;
            self.per_job.drain(..excess);
        }
    }

    /// Average lanes per fused pass (0 when no fused pass ran).
    pub fn lanes_per_pass(&self) -> f64 {
        if self.fused_passes == 0 {
            0.0
        } else {
            self.fused_lanes as f64 / self.fused_passes as f64
        }
    }

    /// Fraction of replay jobs whose capture was shared from the memo
    /// (`trace_memo_hits / (trace_memo_hits + captures)`; 0 when no
    /// replay job ran).
    pub fn trace_memo_hit_rate(&self) -> f64 {
        let lookups = self.trace_memo_hits + self.captures;
        if lookups == 0 {
            0.0
        } else {
            self.trace_memo_hits as f64 / lookups as f64
        }
    }

    /// Renders the telemetry as a JSON object (for `--json` artifacts).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("jobs_total", self.jobs_total)
            .field("jobs_run", self.jobs_run)
            .field("cache_hits", self.cache_hits)
            .field("wall_micros_total", self.wall_micros_total)
            .field("captures", self.captures)
            .field("trace_memo_hits", self.trace_memo_hits)
            .field("trace_memo_hit_rate", self.trace_memo_hit_rate())
            .field("capture_micros_total", self.capture_micros_total)
            .field("memo_evictions", self.memo_evictions)
            .field("fused_passes", self.fused_passes)
            .field("fused_lanes", self.fused_lanes)
            .field("lanes_per_pass", self.lanes_per_pass())
            .field(
                "per_job",
                Json::Arr(
                    self.per_job
                        .iter()
                        .map(|t| {
                            Json::obj()
                                .field("job", t.label.as_str())
                                .field("wall_micros", t.wall_micros)
                                .field("compile_micros", t.compile_micros)
                                .field("capture_micros", t.capture_micros)
                                .field("sim_micros", t.sim_micros)
                        })
                        .collect(),
                ),
            )
    }

    /// One-line human summary (stderr-friendly).
    pub fn summary(&self) -> String {
        format!(
            "{} jobs: {} simulated, {} from cache, {:.2}s simulation time",
            self.jobs_total,
            self.jobs_run,
            self.cache_hits,
            self.wall_micros_total as f64 / 1e6,
        )
    }
}

/// Compilation memo key: everything that affects the compiled binary.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct CompileKey {
    benchmark: String,
    ifconv: bool,
    /// `f64::to_bits` of the threshold override (`u64::MAX` = none).
    threshold_bits: u64,
    profile_steps: u64,
}

impl CompileKey {
    fn of(job: &Job) -> CompileKey {
        CompileKey {
            benchmark: job.benchmark.clone(),
            ifconv: job.ifconv,
            threshold_bits: job.ifconv_threshold.map_or(u64::MAX, f64::to_bits),
            profile_steps: job.profile_steps,
        }
    }
}

/// Trace memo key: the binary identity plus the capture budget. Jobs
/// with different commit budgets need different capture lengths, so the
/// budget is part of the key (in practice a sweep uses one budget, so
/// every cell of a benchmark shares one capture; a sampled sweep's cells
/// all share one capture spanning the last window's end).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct TraceKey {
    compile: CompileKey,
    steps: u64,
}

/// Machine-checkpoint memo key: the binary identity plus the functional
/// fast-forward distance. Sampled jobs on the inline (no-replay) path
/// restore from these instead of re-running the skipped prefix; windows
/// of one schedule each get their own key, but every scheme×predication
/// cell at the same window shares one checkpoint.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct CkptKey {
    compile: CompileKey,
    steps: u64,
}

/// One sampled grid cell after aggregation: the merged estimate plus the
/// per-window results it was built from (reports show both).
#[derive(Clone, Debug)]
pub struct SampledResult {
    /// Counter-summed aggregate of every window (see
    /// `SimStats::merge`): rates derived from it are the sampled
    /// estimates of the full run's rates.
    pub aggregate: JobResult,
    /// Per-window results, in window order.
    pub samples: Vec<JobResult>,
}

/// The experiment execution engine.
pub struct Runner {
    opts: RunnerOptions,
    cache: Option<DiskCache>,
    suite: Vec<WorkloadSpec>,
    /// Per-key compile memo. The `Arc<OnceLock>` two-step keeps the map
    /// lock held only for the lookup, so two workers needing *different*
    /// benchmarks compile concurrently while two needing the *same* one
    /// compile once.
    compiled: Mutex<HashMap<CompileKey, Arc<OnceLock<Arc<Compiled>>>>>,
    /// Per-(binary, budget) captured-trace memo, same locking discipline
    /// as `compiled`: capture once, replay from every cell.
    traces: Mutex<HashMap<TraceKey, Arc<OnceLock<Arc<TraceBuffer>>>>>,
    /// Per-(binary, fast-forward) machine-checkpoint memo for sampled
    /// inline jobs: fast-forward once, restore per cell.
    ckpts: Mutex<HashMap<CkptKey, Arc<OnceLock<Arc<Checkpoint>>>>>,
    /// Externally supplied trace streams, keyed by content hash (see
    /// [`Runner::register_trace`]). Unlike the capture memo these are
    /// provided, not derived, so they are never evicted: the runner
    /// cannot recreate them.
    ext_traces: Mutex<HashMap<u64, Arc<TraceBuffer>>>,
    telemetry: Mutex<Telemetry>,
}

impl Runner {
    /// A runner with the given options. Cache-open failures degrade to
    /// running without a cache rather than erroring.
    pub fn new(opts: RunnerOptions) -> Runner {
        let cache = if opts.cache {
            let dir = opts
                .cache_dir
                .clone()
                .unwrap_or_else(DiskCache::default_dir);
            DiskCache::open_capped(dir, opts.cache_max_bytes).ok()
        } else {
            None
        };
        Runner {
            opts,
            cache,
            suite: spec2000_suite(),
            compiled: Mutex::new(HashMap::new()),
            traces: Mutex::new(HashMap::new()),
            ckpts: Mutex::new(HashMap::new()),
            ext_traces: Mutex::new(HashMap::new()),
            telemetry: Mutex::new(Telemetry::default()),
        }
    }

    /// Registers an externally supplied trace stream (an imported
    /// `.pptrace` file or CBP import) and returns the [`TraceId`] that
    /// names it in [`Job::trace`]. The identity is the stream's content
    /// hash, so registering the same stream twice is idempotent and two
    /// renamed copies of one file share cache entries.
    pub fn register_trace(&self, trace: Arc<TraceBuffer>, branches_only: bool) -> TraceId {
        let content = ppsim_isa::pptrace::content_hash(&trace);
        self.ext_traces.lock().unwrap().insert(content, trace);
        TraceId {
            content,
            branches_only,
        }
    }

    /// Looks up a registered external trace.
    fn ext_trace(&self, id: TraceId) -> Arc<TraceBuffer> {
        self.ext_traces
            .lock()
            .unwrap()
            .get(&id.content)
            .cloned()
            .unwrap_or_else(|| {
                panic!(
                    "trace {:016x} was not registered with this runner",
                    id.content
                )
            })
    }

    /// A serial, cache-less runner (unit tests; guaranteed hermetic).
    pub fn serial_no_cache() -> Runner {
        Runner::new(RunnerOptions {
            jobs: 1,
            cache: false,
            cache_dir: None,
            ..RunnerOptions::default()
        })
    }

    /// Cumulative telemetry since construction.
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.lock().unwrap().clone()
    }

    /// The on-disk result cache, when one is open.
    pub fn cache(&self) -> Option<&DiskCache> {
        self.cache.as_ref()
    }

    /// Probes the on-disk cache for `job` without simulating or touching
    /// telemetry — the warm fast path of a serving front end: a hit can
    /// be returned immediately, bypassing any scheduling or coalescing
    /// machinery reserved for cold simulations.
    pub fn probe(&self, job: &Job) -> Option<JobResult> {
        self.cache.as_ref()?.load(job)
    }

    /// Runs a grid of jobs and returns results in grid order.
    ///
    /// Cache hits are resolved serially up front (file reads — not worth
    /// threading); misses fan out over the pool. Results are assembled by
    /// grid index, so the output order — and any report rendered from it —
    /// is independent of worker count and scheduling.
    pub fn run_grid(&self, jobs: &[Job]) -> Vec<JobResult> {
        // 1. Serial cache probe.
        let mut slots: Vec<Option<JobResult>> = match &self.cache {
            Some(cache) => jobs.iter().map(|j| cache.load(j)).collect(),
            None => vec![None; jobs.len()],
        };

        // 2. Bundle the misses: replay cells sharing one stream fuse into
        //    a single lane-parallel pass, everything else is a bundle of
        //    one. Bundles fan out over the pool.
        let miss_idx: Vec<usize> = (0..jobs.len()).filter(|&i| slots[i].is_none()).collect();
        let bundles = self.bundle_misses(jobs, &miss_idx);
        let fresh = pool::run_indexed(bundles.len(), self.opts.effective_jobs(), |k| {
            let members: Vec<&Job> = bundles[k].iter().map(|&i| &jobs[i]).collect();
            if members.len() == 1 {
                vec![self.execute(members[0])]
            } else {
                self.execute_fused(&members)
            }
        });

        // 3. Store fresh results and fill their slots — each cell under
        //    its own unchanged canonical key, fused or not.
        let mut fused_passes = 0u64;
        let mut fused_lanes = 0u64;
        for (bundle, results) in bundles.iter().zip(fresh) {
            if bundle.len() > 1 {
                fused_passes += 1;
                fused_lanes += bundle.len() as u64;
            }
            for (&i, result) in bundle.iter().zip(results) {
                if let Some(cache) = &self.cache {
                    // A failed store is not fatal — the result is still
                    // good, the next run just recomputes.
                    let _ = cache.store(&jobs[i], &result);
                }
                slots[i] = Some(result);
            }
        }

        let results: Vec<JobResult> = slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect();
        let mut telemetry = self.telemetry.lock().unwrap();
        telemetry.absorb(jobs, &results);
        telemetry.fused_passes += fused_passes;
        telemetry.fused_lanes += fused_lanes;
        drop(telemetry);
        results
    }

    /// Groups cache-miss indices into fused bundles. Cells fuse when the
    /// fused path applies (trace replay on, fusion on) and they share the
    /// stream identity — binary, commit budget and sample slice; each
    /// group keeps grid order, and group order follows each stream's
    /// first appearance, so scheduling stays deterministic.
    fn bundle_misses(&self, jobs: &[Job], miss_idx: &[usize]) -> Vec<Vec<usize>> {
        if !(self.opts.replay && self.opts.fuse) {
            return miss_idx.iter().map(|&i| vec![i]).collect();
        }
        let mut order: Vec<(CompileKey, u64, Option<SampleSlice>, Option<TraceId>)> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for &i in miss_idx {
            let job = &jobs[i];
            let key = (CompileKey::of(job), job.commits, job.sample, job.trace);
            match order.iter().position(|k| *k == key) {
                Some(g) => groups[g].push(i),
                None => {
                    order.push(key);
                    groups.push(vec![i]);
                }
            }
        }
        groups
    }

    /// Runs a single job (grid of one).
    pub fn run_job(&self, job: &Job) -> JobResult {
        self.run_grid(std::slice::from_ref(job)).pop().unwrap()
    }

    /// Runs a grid of cells in sampled mode: each cell expands into
    /// `spec.count` window jobs (cached and scheduled independently, like
    /// any other job), and the windows' counters are merged back into one
    /// aggregate per cell. Results come back in grid order, so reports
    /// built from them are as deterministic as full-run reports.
    ///
    /// Cells carrying their own `sample` slice are rejected — the
    /// schedule is this call's to assign.
    pub fn run_grid_sampled(&self, jobs: &[Job], spec: SampleSpec) -> Vec<SampledResult> {
        assert!(
            jobs.iter().all(|j| j.sample.is_none()),
            "sampled grids are expanded here; cells must not pre-assign windows"
        );
        let expanded: Vec<Job> = jobs
            .iter()
            .flat_map(|j| {
                (0..spec.count).map(move |index| Job {
                    sample: Some(SampleSlice { spec, index }),
                    ..j.clone()
                })
            })
            .collect();
        let results = self.run_grid(&expanded);
        results
            .chunks(spec.count as usize)
            .map(|samples| {
                let mut aggregate = samples[0].clone();
                aggregate.stats = samples[0].stats.clone();
                for s in &samples[1..] {
                    aggregate.stats.merge(&s.stats);
                    aggregate.from_cache &= s.from_cache;
                    aggregate.wall_micros += s.wall_micros;
                    aggregate.compile_micros += s.compile_micros;
                    aggregate.capture_micros += s.capture_micros;
                    aggregate.sim_micros += s.sim_micros;
                    aggregate.trace_memo_hit |= s.trace_memo_hit;
                }
                SampledResult {
                    aggregate,
                    samples: samples.to_vec(),
                }
            })
            .collect()
    }

    /// Runs a single cell in sampled mode (sampled grid of one).
    pub fn run_job_sampled(&self, job: &Job, spec: SampleSpec) -> SampledResult {
        self.run_grid_sampled(std::slice::from_ref(job), spec)
            .pop()
            .unwrap()
    }

    /// In-process memo size caps. A one-shot grid never reaches them;
    /// they exist so a long-lived runner (`ppsim serve`) holds bounded
    /// memory. Overflow flushes the whole memo — in-flight holders keep
    /// their `Arc`s, future jobs re-derive — which is crude but cheap
    /// and, crucially, invisible to results. Traces are the big entries
    /// (~5 B per captured record), so their cap is the tightest.
    const COMPILE_MEMO_CAP: usize = 256;
    const TRACE_MEMO_CAP: usize = 32;
    const CKPT_MEMO_CAP: usize = 256;

    /// Flushes `map` when inserting a new `key` would exceed `cap`,
    /// recording the eviction count in telemetry.
    fn bound_memo<K: std::hash::Hash + Eq, V>(&self, map: &mut HashMap<K, V>, key: &K, cap: usize) {
        if map.len() >= cap && !map.contains_key(key) {
            let evicted = map.len() as u64;
            map.clear();
            self.telemetry.lock().unwrap().memo_evictions += evicted;
        }
    }

    /// Compiles (or returns the memoized binary for) a job's benchmark.
    fn compiled_for(&self, job: &Job) -> Arc<Compiled> {
        let key = CompileKey::of(job);
        let cell = {
            let mut map = self.compiled.lock().unwrap();
            self.bound_memo(&mut map, &key, Self::COMPILE_MEMO_CAP);
            Arc::clone(map.entry(key).or_default())
        };
        cell.get_or_init(|| {
            let spec = self
                .suite
                .iter()
                .find(|s| s.name == job.benchmark)
                .unwrap_or_else(|| panic!("unknown benchmark `{}`", job.benchmark));
            let mut opts = if job.ifconv {
                CompileOptions::with_ifconv()
            } else {
                CompileOptions::no_ifconv()
            };
            opts.profile_steps = job.profile_steps;
            if let Some(t) = job.ifconv_threshold {
                opts.ifconvert.misp_threshold = t;
            }
            Arc::new(compile(spec, &opts).expect("suite benchmarks compile"))
        })
        .clone()
    }

    /// Returns the shared capture of `steps` records for a job's binary,
    /// capturing it on first use. Yields `(trace, capture_micros,
    /// memo_hit)`: `capture_micros` is nonzero only for the worker that
    /// performed the capture. Full runs capture `job.commits` records;
    /// sampled runs capture the schedule's span once and window into it.
    fn trace_for(
        &self,
        job: &Job,
        compiled: &Compiled,
        steps: u64,
    ) -> (Arc<TraceBuffer>, u64, bool) {
        let key = TraceKey {
            compile: CompileKey::of(job),
            steps,
        };
        let cell = {
            let mut map = self.traces.lock().unwrap();
            self.bound_memo(&mut map, &key, Self::TRACE_MEMO_CAP);
            Arc::clone(map.entry(key).or_default())
        };
        let mut capture_micros = 0u64;
        let mut fresh = false;
        let trace = cell
            .get_or_init(|| {
                fresh = true;
                let started = Instant::now();
                let buf = TraceBuffer::capture(&compiled.program, steps)
                    .unwrap_or_else(|e| panic!("functional machine died: {e}"));
                capture_micros = started.elapsed().as_micros() as u64;
                Arc::new(buf)
            })
            .clone();
        (trace, capture_micros, !fresh)
    }

    /// Returns the shared machine checkpoint `steps` committed
    /// instructions into a job's binary, fast-forwarding the functional
    /// emulator on first use. Yields `(checkpoint, ff_micros, memo_hit)`
    /// with the same accounting convention as [`Runner::trace_for`].
    fn checkpoint_for(
        &self,
        job: &Job,
        compiled: &Compiled,
        steps: u64,
    ) -> (Arc<Checkpoint>, u64, bool) {
        let key = CkptKey {
            compile: CompileKey::of(job),
            steps,
        };
        let cell = {
            let mut map = self.ckpts.lock().unwrap();
            self.bound_memo(&mut map, &key, Self::CKPT_MEMO_CAP);
            Arc::clone(map.entry(key).or_default())
        };
        let mut ff_micros = 0u64;
        let mut fresh = false;
        let ckpt = cell
            .get_or_init(|| {
                fresh = true;
                let started = Instant::now();
                let mut m = Machine::new(&compiled.program);
                m.run(steps)
                    .unwrap_or_else(|e| panic!("functional machine died: {e}"));
                ff_micros = started.elapsed().as_micros() as u64;
                Arc::new(m.checkpoint())
            })
            .clone();
        (ckpt, ff_micros, !fresh)
    }

    /// The simulator options a job's cell axes translate to.
    fn sim_options_for(job: &Job) -> SimOptions {
        let mut opts = SimOptions::new(job.scheme, job.predication)
            .core(job.core)
            .shadow(job.shadow);
        if let Some(p) = job.perceptron {
            opts = opts.perceptron(p);
        }
        if let Some(p) = job.predicate {
            opts = opts.predicate(p);
        }
        opts
    }

    /// Runs a bundle of replay cells sharing one stream as a single
    /// fused lane-parallel pass ([`LaneSet`]): the trace is decoded
    /// once, every lane keeps its own complete timing state, and each
    /// lane's result is bit-identical to its solo run.
    ///
    /// Accounting: the capture phase (and the memo-miss flag) is charged
    /// to the first lane, mirroring the solo path where only the
    /// capturing cell pays it; the shared pass's simulation time is
    /// split evenly across lanes, so grid-level `sim_micros` sums stay
    /// meaningful.
    fn execute_fused(&self, members: &[&Job]) -> Vec<JobResult> {
        let lead = members[0];
        if let Some(id) = lead.trace {
            // Bundles group by trace identity, so every member shares
            // this registered stream.
            return self.execute_fused_traced(members, id);
        }
        let started = Instant::now();
        let compiled = self.compiled_for(lead);
        let compile_micros = started.elapsed().as_micros() as u64;
        let cells: Vec<SimOptions> = members.iter().map(|j| Self::sim_options_for(j)).collect();

        let (runs, capture_micros, trace_memo_hit, sim_micros) = match lead.sample {
            Some(slice) => {
                let (trace, capture_micros, memo_hit) =
                    self.trace_for(lead, &compiled, slice.spec.span());
                let start = slice.spec.window_start(slice.index);
                let cursor =
                    TraceCursor::window(trace, start, slice.spec.warmup + slice.spec.measure);
                let mut lanes = LaneSet::new(cursor, &cells)
                    .expect("grid jobs carry only applicable overrides");
                let sim_started = Instant::now();
                let runs = lanes.run_sample(slice.spec.warmup, slice.spec.measure);
                (
                    runs,
                    capture_micros,
                    memo_hit,
                    sim_started.elapsed().as_micros() as u64,
                )
            }
            None => {
                let (trace, capture_micros, memo_hit) =
                    self.trace_for(lead, &compiled, lead.commits);
                let mut lanes = LaneSet::new(TraceCursor::new(trace), &cells)
                    .expect("grid jobs carry only applicable overrides");
                let sim_started = Instant::now();
                let runs = lanes.run(lead.commits);
                (
                    runs,
                    capture_micros,
                    memo_hit,
                    sim_started.elapsed().as_micros() as u64,
                )
            }
        };

        let wall_micros = started.elapsed().as_micros() as u64;
        let static_insns = compiled.program.count_insns(|_| true) as u64;
        let static_cond_branches = compiled.program.count_insns(|i| i.is_cond_branch()) as u64;
        let n = members.len() as u64;
        runs.into_iter()
            .enumerate()
            .map(|(lane, run)| JobResult {
                stats: run.stats,
                static_insns,
                static_cond_branches,
                from_cache: false,
                wall_micros: wall_micros / n,
                compile_micros: if lane == 0 { compile_micros } else { 0 },
                capture_micros: if lane == 0 { capture_micros } else { 0 },
                sim_micros: sim_micros / n,
                trace_memo_hit: if lane == 0 { trace_memo_hit } else { true },
            })
            .collect()
    }

    /// Static-code counters of an external trace's synthesized or
    /// exported code image (the compile-path equivalents come from the
    /// compiled binary).
    fn trace_static_counts(trace: &TraceBuffer) -> (u64, u64) {
        let insns = trace.code().len() as u64;
        let cond = trace.code().iter().filter(|i| i.is_cond_branch()).count() as u64;
        (insns, cond)
    }

    /// Runs a fused bundle of cells over one registered external trace.
    /// Same accounting as [`Runner::execute_fused`], minus the compile
    /// and capture phases (an imported stream has neither).
    fn execute_fused_traced(&self, members: &[&Job], id: TraceId) -> Vec<JobResult> {
        let started = Instant::now();
        let lead = members[0];
        let trace = self.ext_trace(id);
        let cells: Vec<SimOptions> = members.iter().map(|j| Self::sim_options_for(j)).collect();
        let (runs, sim_micros) = match lead.sample {
            Some(slice) => {
                let start = slice.spec.window_start(slice.index);
                let cursor = TraceCursor::window(
                    Arc::clone(&trace),
                    start,
                    slice.spec.warmup + slice.spec.measure,
                );
                let mut lanes = LaneSet::new(cursor, &cells)
                    .expect("grid jobs carry only applicable overrides");
                let sim_started = Instant::now();
                let runs = lanes.run_sample(slice.spec.warmup, slice.spec.measure);
                (runs, sim_started.elapsed().as_micros() as u64)
            }
            None => {
                let mut lanes = LaneSet::new(TraceCursor::new(Arc::clone(&trace)), &cells)
                    .expect("grid jobs carry only applicable overrides");
                let sim_started = Instant::now();
                let runs = lanes.run(lead.commits);
                (runs, sim_started.elapsed().as_micros() as u64)
            }
        };
        let wall_micros = started.elapsed().as_micros() as u64;
        let (static_insns, static_cond_branches) = Self::trace_static_counts(&trace);
        let n = members.len() as u64;
        runs.into_iter()
            .map(|run| JobResult {
                stats: run.stats,
                static_insns,
                static_cond_branches,
                from_cache: false,
                wall_micros: wall_micros / n,
                compile_micros: 0,
                capture_micros: 0,
                sim_micros: sim_micros / n,
                trace_memo_hit: false,
            })
            .collect()
    }

    /// Simulates one cell over a registered external trace. Imported
    /// streams are replay-only — `--no-replay` selects the inline
    /// functional machine, and no such machine exists for an external
    /// stream — so this path ignores [`RunnerOptions::replay`].
    fn execute_traced(&self, job: &Job, id: TraceId) -> JobResult {
        let started = Instant::now();
        let trace = self.ext_trace(id);
        let opts = Self::sim_options_for(job);
        let (run, sim_micros) = match job.sample {
            Some(slice) => {
                let start = slice.spec.window_start(slice.index);
                let mut sim = opts
                    .build_source(TraceCursor::window(
                        Arc::clone(&trace),
                        start,
                        slice.spec.warmup + slice.spec.measure,
                    ))
                    .expect("grid jobs carry only applicable overrides");
                let sim_started = Instant::now();
                let run = sim.run_sample(slice.spec.warmup, slice.spec.measure);
                (run, sim_started.elapsed().as_micros() as u64)
            }
            None => {
                let mut sim = opts
                    .build_source(TraceCursor::new(Arc::clone(&trace)))
                    .expect("grid jobs carry only applicable overrides");
                let sim_started = Instant::now();
                let run = sim.run(job.commits);
                (run, sim_started.elapsed().as_micros() as u64)
            }
        };
        let (static_insns, static_cond_branches) = Self::trace_static_counts(&trace);
        JobResult {
            stats: run.stats,
            static_insns,
            static_cond_branches,
            from_cache: false,
            wall_micros: started.elapsed().as_micros() as u64,
            compile_micros: 0,
            capture_micros: 0,
            sim_micros,
            trace_memo_hit: false,
        }
    }

    /// Compiles and simulates one job (a cache miss).
    fn execute(&self, job: &Job) -> JobResult {
        if let Some(id) = job.trace {
            return self.execute_traced(job, id);
        }
        let started = Instant::now();
        let compiled = self.compiled_for(job);
        let compile_micros = started.elapsed().as_micros() as u64;

        let opts = Self::sim_options_for(job);

        let (run, capture_micros, trace_memo_hit, sim_micros): (RunResult, u64, bool, u64) =
            match (job.sample, self.opts.replay) {
                (Some(slice), true) => {
                    // One capture spans the whole schedule; each window
                    // job seeks a cursor into it.
                    let (trace, capture_micros, memo_hit) =
                        self.trace_for(job, &compiled, slice.spec.span());
                    let start = slice.spec.window_start(slice.index);
                    let mut sim = opts
                        .build_source(TraceCursor::window(
                            trace,
                            start,
                            slice.spec.warmup + slice.spec.measure,
                        ))
                        .expect("grid jobs carry only applicable overrides");
                    let sim_started = Instant::now();
                    let run = sim.run_sample(slice.spec.warmup, slice.spec.measure);
                    (
                        run,
                        capture_micros,
                        memo_hit,
                        sim_started.elapsed().as_micros() as u64,
                    )
                }
                (Some(slice), false) => {
                    // Restore the shared checkpoint at the window start
                    // instead of re-running the skipped prefix. The
                    // fast-forward cost is charged to the capture phase —
                    // it plays the same "position the functional stream"
                    // role.
                    let start = slice.spec.window_start(slice.index);
                    let (ckpt, ff_micros, memo_hit) = self.checkpoint_for(job, &compiled, start);
                    let mut machine = Machine::new(&compiled.program);
                    machine.restore(&ckpt);
                    let mut sim = opts
                        .build_source(machine)
                        .expect("grid jobs carry only applicable overrides");
                    let sim_started = Instant::now();
                    let run = sim.run_sample(slice.spec.warmup, slice.spec.measure);
                    (
                        run,
                        ff_micros,
                        memo_hit,
                        sim_started.elapsed().as_micros() as u64,
                    )
                }
                (None, true) => {
                    let (trace, capture_micros, memo_hit) =
                        self.trace_for(job, &compiled, job.commits);
                    let mut sim = opts
                        .build_source(TraceCursor::new(trace))
                        .expect("grid jobs carry only applicable overrides");
                    let sim_started = Instant::now();
                    let run = sim.run(job.commits);
                    (
                        run,
                        capture_micros,
                        memo_hit,
                        sim_started.elapsed().as_micros() as u64,
                    )
                }
                (None, false) => {
                    let mut sim = opts
                        .build_source(Machine::new(&compiled.program))
                        .expect("grid jobs carry only applicable overrides");
                    let sim_started = Instant::now();
                    let run = sim.run(job.commits);
                    (run, 0, false, sim_started.elapsed().as_micros() as u64)
                }
            };

        JobResult {
            stats: run.stats,
            static_insns: compiled.program.count_insns(|_| true) as u64,
            static_cond_branches: compiled.program.count_insns(|i| i.is_cond_branch()) as u64,
            from_cache: false,
            wall_micros: started.elapsed().as_micros() as u64,
            compile_micros,
            capture_micros,
            sim_micros,
            trace_memo_hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim_pipeline::{CoreConfig, PredicationModel, SchemeKind};

    fn tiny(scheme: SchemeKind) -> Job {
        Job::new(
            "gzip",
            false,
            scheme,
            PredicationModel::Cmov,
            5_000,
            20_000,
            CoreConfig::paper(),
        )
    }

    #[test]
    fn serial_runner_produces_nonempty_stats() {
        let r = Runner::serial_no_cache();
        let out = r.run_job(&tiny(SchemeKind::Conventional));
        assert!(out.stats.committed >= 5_000);
        assert!(out.stats.cond_branches > 0);
        assert!(out.static_insns > 0);
        assert!(out.static_cond_branches > 0);
        assert!(!out.from_cache);
    }

    #[test]
    fn compile_memo_shares_across_jobs() {
        let r = Runner::serial_no_cache();
        let grid = vec![tiny(SchemeKind::Conventional), tiny(SchemeKind::Predicate)];
        let out = r.run_grid(&grid);
        assert_eq!(out.len(), 2);
        // Same binary → same static counts.
        assert_eq!(out[0].static_insns, out[1].static_insns);
        assert_eq!(
            r.compiled.lock().unwrap().len(),
            1,
            "one compile for two jobs"
        );
    }

    #[test]
    fn telemetry_counts_runs() {
        let r = Runner::serial_no_cache();
        r.run_grid(&[tiny(SchemeKind::Conventional)]);
        let t = r.telemetry();
        assert_eq!(t.jobs_total, 1);
        assert_eq!(t.jobs_run, 1);
        assert_eq!(t.cache_hits, 0);
        assert_eq!(t.per_job.len(), 1);
        assert_eq!(t.per_job[0].label, "gzip/conventional");
        assert!(
            t.per_job[0].wall_micros >= t.per_job[0].sim_micros,
            "phases nest inside the total"
        );
    }

    #[test]
    fn replay_matches_inline_bit_for_bit() {
        let replay = Runner::serial_no_cache();
        let inline = Runner::new(RunnerOptions {
            jobs: 1,
            cache: false,
            replay: false,
            ..RunnerOptions::default()
        });
        for scheme in [SchemeKind::Conventional, SchemeKind::Predicate] {
            let j = tiny(scheme);
            let a = replay.run_job(&j);
            let b = inline.run_job(&j);
            assert_eq!(
                a.stats, b.stats,
                "trace replay must be invisible to statistics ({scheme:?})"
            );
        }
    }

    #[test]
    fn trace_memo_shares_one_capture_across_cells() {
        let r = Runner::serial_no_cache();
        let grid = vec![
            tiny(SchemeKind::Conventional),
            tiny(SchemeKind::Predicate),
            tiny(SchemeKind::PepPa),
        ];
        let out = r.run_grid(&grid);
        assert_eq!(
            r.traces.lock().unwrap().len(),
            1,
            "one capture, three cells"
        );
        let t = r.telemetry();
        assert_eq!(t.captures, 1);
        assert_eq!(t.trace_memo_hits, 2);
        assert!((t.trace_memo_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(
            out.iter().filter(|o| o.trace_memo_hit).count(),
            2,
            "exactly the two replaying cells report a memo hit"
        );
        assert_eq!(
            out.iter().filter(|o| o.capture_micros > 0).count(),
            1,
            "only the capturing cell is charged capture time"
        );
    }

    #[test]
    fn distinct_budgets_capture_separately() {
        let r = Runner::serial_no_cache();
        let long = Job {
            commits: 6_000,
            ..tiny(SchemeKind::Conventional)
        };
        r.run_grid(&[tiny(SchemeKind::Conventional), long]);
        assert_eq!(
            r.traces.lock().unwrap().len(),
            2,
            "a longer budget needs its own (longer) capture"
        );
        assert_eq!(r.compiled.lock().unwrap().len(), 1, "but shares the binary");
    }

    #[test]
    fn sampled_grid_shares_one_capture_and_merges_windows() {
        let spec = SampleSpec {
            skip: 1_000,
            warmup: 500,
            measure: 1_000,
            stride: 2_000,
            count: 3,
        };
        let r = Runner::serial_no_cache();
        let base = tiny(SchemeKind::Conventional);
        let out = r.run_grid_sampled(std::slice::from_ref(&base), spec);
        assert_eq!(out.len(), 1);
        let cell = &out[0];
        assert_eq!(cell.samples.len(), 3);
        for s in &cell.samples {
            assert_eq!(s.stats.committed, spec.measure, "one measured window");
            assert_eq!(s.stats.stall.total(), s.stats.cycles);
        }
        assert_eq!(cell.aggregate.stats.committed, 3 * spec.measure);
        assert_eq!(
            cell.aggregate.stats.stall.total(),
            cell.aggregate.stats.cycles,
            "the invariant survives aggregation"
        );
        assert_eq!(
            r.traces.lock().unwrap().len(),
            1,
            "three windows share one span capture"
        );
    }

    #[test]
    fn sampled_inline_matches_sampled_replay() {
        let spec = SampleSpec {
            skip: 1_500,
            warmup: 400,
            measure: 800,
            stride: 1_500,
            count: 2,
        };
        let replay = Runner::serial_no_cache();
        let inline = Runner::new(RunnerOptions {
            jobs: 1,
            cache: false,
            replay: false,
            ..RunnerOptions::default()
        });
        for scheme in [SchemeKind::Conventional, SchemeKind::Predicate] {
            let j = tiny(scheme);
            let a = replay.run_job_sampled(&j, spec);
            let b = inline.run_job_sampled(&j, spec);
            assert_eq!(
                a.aggregate.stats, b.aggregate.stats,
                "checkpoint restore and trace window must agree ({scheme:?})"
            );
            for (x, y) in a.samples.iter().zip(&b.samples) {
                assert_eq!(x.stats, y.stats, "{scheme:?}: per-window agreement");
            }
        }
        assert_eq!(
            inline.ckpts.lock().unwrap().len(),
            2,
            "one checkpoint per window start, shared across schemes"
        );
    }

    #[test]
    fn fused_grid_matches_per_cell_bit_for_bit() {
        let fused = Runner::serial_no_cache();
        let solo = Runner::new(RunnerOptions {
            jobs: 1,
            cache: false,
            fuse: false,
            ..RunnerOptions::default()
        });
        let grid = vec![
            tiny(SchemeKind::Conventional),
            tiny(SchemeKind::PepPa),
            tiny(SchemeKind::Predicate),
        ];
        let a = fused.run_grid(&grid);
        let b = solo.run_grid(&grid);
        for ((x, y), job) in a.iter().zip(&b).zip(&grid) {
            assert_eq!(
                x.stats,
                y.stats,
                "fusion must be invisible to statistics ({})",
                job.label()
            );
        }
        let tf = fused.telemetry();
        assert_eq!(tf.fused_passes, 1, "three cells share one stream");
        assert_eq!(tf.fused_lanes, 3);
        assert!((tf.lanes_per_pass() - 3.0).abs() < 1e-12);
        let ts = solo.telemetry();
        assert_eq!(ts.fused_passes, 0, "--no-fuse runs cells solo");
        assert_eq!(ts.fused_lanes, 0);
    }

    #[test]
    fn fused_sampled_grid_matches_per_cell() {
        let spec = SampleSpec {
            skip: 1_000,
            warmup: 500,
            measure: 1_000,
            stride: 2_000,
            count: 2,
        };
        let fused = Runner::serial_no_cache();
        let solo = Runner::new(RunnerOptions {
            jobs: 1,
            cache: false,
            fuse: false,
            ..RunnerOptions::default()
        });
        let grid = vec![tiny(SchemeKind::Conventional), tiny(SchemeKind::Predicate)];
        let a = fused.run_grid_sampled(&grid, spec);
        let b = solo.run_grid_sampled(&grid, spec);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.aggregate.stats, y.aggregate.stats);
            for (xs, ys) in x.samples.iter().zip(&y.samples) {
                assert_eq!(xs.stats, ys.stats, "per-window agreement");
            }
        }
        // Two cells × two windows → one fused pass per window.
        assert_eq!(fused.telemetry().fused_passes, 2);
        assert_eq!(fused.telemetry().fused_lanes, 4);
    }

    #[test]
    fn mixed_budgets_only_fuse_matching_streams() {
        let r = Runner::serial_no_cache();
        let long = Job {
            commits: 6_000,
            ..tiny(SchemeKind::Conventional)
        };
        let grid = vec![
            tiny(SchemeKind::Conventional),
            long,
            tiny(SchemeKind::Predicate),
        ];
        r.run_grid(&grid);
        let t = r.telemetry();
        assert_eq!(
            t.fused_passes, 1,
            "only the two same-budget cells share a stream"
        );
        assert_eq!(t.fused_lanes, 2);
    }

    #[test]
    fn options_parse_runner_flags() {
        let args: Vec<String> = [
            "--json",
            "out.json",
            "--jobs",
            "4",
            "--no-cache",
            "--no-replay",
            "--cache-dir",
            "/tmp/c",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (opts, rest) = RunnerOptions::from_args(&args).unwrap();
        assert_eq!(opts.jobs, 4);
        assert!(!opts.cache);
        assert!(!opts.replay);
        assert_eq!(
            opts.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/c"))
        );
        assert_eq!(rest, vec!["--json".to_string(), "out.json".to_string()]);
    }

    #[test]
    fn bad_jobs_value_is_an_error() {
        let args = vec!["--jobs".to_string(), "many".to_string()];
        assert!(RunnerOptions::from_args(&args).is_err());
    }

    #[test]
    fn zero_jobs_flag_is_an_error() {
        let args = vec!["--jobs".to_string(), "0".to_string()];
        let err = RunnerOptions::from_args(&args).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        // The programmatic default (0 = one worker per CPU) stays legal.
        assert!(RunnerOptions::default().validate().is_ok());
    }

    #[test]
    fn nonsensical_options_are_rejected() {
        let absurd = RunnerOptions {
            jobs: MAX_JOBS + 1,
            ..RunnerOptions::default()
        };
        assert!(absurd.validate().is_err());
        let empty_dir = RunnerOptions {
            cache_dir: Some(PathBuf::new()),
            ..RunnerOptions::default()
        };
        assert!(empty_dir.validate().is_err());
        let capped_no_cache = RunnerOptions {
            cache: false,
            cache_max_bytes: Some(1 << 20),
            ..RunnerOptions::default()
        };
        assert!(capped_no_cache.validate().is_err());
        let args = vec!["--jobs".to_string(), (MAX_JOBS + 1).to_string()];
        assert!(RunnerOptions::from_args(&args).is_err());
    }

    #[test]
    fn cache_max_bytes_flag_parses() {
        let args: Vec<String> = ["--cache-max-bytes", "1048576"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (opts, rest) = RunnerOptions::from_args(&args).unwrap();
        assert_eq!(opts.cache_max_bytes, Some(1 << 20));
        assert!(rest.is_empty());
    }

    #[test]
    fn probe_misses_cold_and_hits_warm() {
        let dir = std::env::temp_dir().join(format!("ppsim-probe-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = Runner::new(RunnerOptions {
            jobs: 1,
            cache_dir: Some(dir.clone()),
            ..RunnerOptions::default()
        });
        let job = tiny(SchemeKind::Conventional);
        assert!(r.probe(&job).is_none(), "cold cache must miss");
        let fresh = r.run_job(&job);
        let hit = r.probe(&job).expect("warm cache must hit");
        assert!(hit.from_cache);
        assert_eq!(hit.stats, fresh.stats, "probe replays the stored stats");
        // Probing never counts as a runner job.
        assert_eq!(r.telemetry().jobs_total, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cacheless_runner_never_probes() {
        let r = Runner::serial_no_cache();
        assert!(r.cache().is_none());
        assert!(r.probe(&tiny(SchemeKind::Conventional)).is_none());
    }

    /// Compiles `gzip` exactly as the runner does for [`tiny`] jobs and
    /// captures `steps` records of its stream.
    fn gzip_trace(steps: u64) -> Arc<TraceBuffer> {
        let suite = spec2000_suite();
        let spec = suite.iter().find(|s| s.name == "gzip").unwrap();
        let mut opts = CompileOptions::no_ifconv();
        opts.profile_steps = 20_000;
        let compiled = compile(spec, &opts).unwrap();
        Arc::new(TraceBuffer::capture(&compiled.program, steps).unwrap())
    }

    #[test]
    fn registered_trace_replays_like_the_benchmark() {
        let r = Runner::serial_no_cache();
        let id = r.register_trace(gzip_trace(5_000), false);
        for scheme in [SchemeKind::Conventional, SchemeKind::Predicate] {
            let bench = tiny(scheme);
            let traced = Job {
                trace: Some(id),
                ..bench.clone()
            };
            let a = r.run_job(&traced);
            let b = r.run_job(&bench);
            assert_eq!(
                a.stats, b.stats,
                "an exported/registered stream must be indistinguishable \
                 from the in-process capture ({scheme:?})"
            );
            assert_eq!(a.static_insns, b.static_insns);
            assert_eq!(a.static_cond_branches, b.static_cond_branches);
        }
    }

    #[test]
    fn registering_the_same_stream_twice_is_idempotent() {
        let r = Runner::serial_no_cache();
        let a = r.register_trace(gzip_trace(2_000), false);
        let b = r.register_trace(gzip_trace(2_000), false);
        assert_eq!(a, b, "content-addressed identity");
        assert_eq!(r.ext_traces.lock().unwrap().len(), 1);
    }

    #[test]
    fn fused_trace_grid_matches_solo_trace_cells() {
        let fused = Runner::serial_no_cache();
        let solo = Runner::new(RunnerOptions {
            jobs: 1,
            cache: false,
            fuse: false,
            ..RunnerOptions::default()
        });
        let trace = gzip_trace(5_000);
        let fid = fused.register_trace(Arc::clone(&trace), false);
        let sid = solo.register_trace(trace, false);
        assert_eq!(fid, sid);
        let grid = |id| {
            vec![
                Job {
                    trace: Some(id),
                    ..tiny(SchemeKind::Conventional)
                },
                Job {
                    trace: Some(id),
                    ..tiny(SchemeKind::PepPa)
                },
                Job {
                    trace: Some(id),
                    ..tiny(SchemeKind::Predicate)
                },
            ]
        };
        let a = fused.run_grid(&grid(fid));
        let b = solo.run_grid(&grid(sid));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.stats, y.stats,
                "fusion is invisible over imported streams"
            );
        }
        assert_eq!(fused.telemetry().fused_passes, 1);
        assert_eq!(fused.telemetry().fused_lanes, 3);
    }

    #[test]
    fn trace_and_benchmark_cells_never_fuse_together() {
        let r = Runner::serial_no_cache();
        let id = r.register_trace(gzip_trace(5_000), false);
        let grid = vec![
            tiny(SchemeKind::Conventional),
            Job {
                trace: Some(id),
                ..tiny(SchemeKind::Predicate)
            },
            tiny(SchemeKind::Predicate),
        ];
        r.run_grid(&grid);
        let t = r.telemetry();
        assert_eq!(
            t.fused_passes, 1,
            "only the two benchmark cells share a stream"
        );
        assert_eq!(t.fused_lanes, 2);
    }

    #[test]
    fn trace_cells_hit_the_disk_cache() {
        let dir = std::env::temp_dir().join(format!("ppsim-trace-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = RunnerOptions {
            jobs: 1,
            cache_dir: Some(dir.clone()),
            ..RunnerOptions::default()
        };
        let cold = Runner::new(opts.clone());
        let id = cold.register_trace(gzip_trace(2_000), false);
        let job = Job {
            trace: Some(id),
            commits: 2_000,
            ..tiny(SchemeKind::Predicate)
        };
        let fresh = cold.run_job(&job);
        assert!(!fresh.from_cache);
        // A new runner (same cache dir) serves the cell without needing
        // the trace registered at all — the cache carries the stats.
        let warm = Runner::new(opts);
        let hit = warm.run_job(&job);
        assert!(hit.from_cache, "trace cells are cached by content hash");
        assert_eq!(hit.stats, fresh.stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampled_trace_windows_match_sampled_benchmark() {
        let spec = SampleSpec {
            skip: 1_000,
            warmup: 500,
            measure: 1_000,
            stride: 2_000,
            count: 2,
        };
        let r = Runner::serial_no_cache();
        // The benchmark path captures the schedule's span; hand the
        // runner an identical external capture.
        let id = r.register_trace(gzip_trace(spec.span()), false);
        let bench = tiny(SchemeKind::Predicate);
        let traced = Job {
            trace: Some(id),
            ..bench.clone()
        };
        let a = r.run_job_sampled(&traced, spec);
        let b = r.run_job_sampled(&bench, spec);
        assert_eq!(a.aggregate.stats, b.aggregate.stats);
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.stats, y.stats, "per-window agreement");
        }
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_trace_panics_with_a_clear_message() {
        let r = Runner::serial_no_cache();
        let job = Job {
            trace: Some(TraceId {
                content: 0x1234,
                branches_only: false,
            }),
            ..tiny(SchemeKind::Conventional)
        };
        r.run_job(&job);
    }

    #[test]
    fn trace_memo_cap_flushes_and_counts() {
        let r = Runner::serial_no_cache();
        // Distinct commit budgets force distinct trace-memo keys.
        let jobs: Vec<Job> = (0..=Runner::TRACE_MEMO_CAP as u64)
            .map(|n| Job {
                commits: 1_000 + n,
                ..tiny(SchemeKind::Conventional)
            })
            .collect();
        r.run_grid(&jobs);
        let t = r.telemetry();
        assert_eq!(
            t.memo_evictions,
            Runner::TRACE_MEMO_CAP as u64,
            "overflow flushed the full memo once"
        );
        assert!(
            r.traces.lock().unwrap().len() <= Runner::TRACE_MEMO_CAP,
            "memo stays bounded"
        );
    }
}
