//! A deterministic work-stealing thread pool for job grids.
//!
//! Built on `std::thread::scope` only — the workspace carries no external
//! dependencies. Each worker owns a deque seeded with a contiguous chunk
//! of job indices; when a worker drains its own deque it steals from the
//! back of the longest victim deque. Results land in pre-allocated
//! indexed slots, so the *assembly order* is the canonical grid order
//! regardless of which worker ran which job or in what interleaving —
//! output is byte-identical for any `--jobs N`.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `work(i)` for every `i in 0..n` across `jobs` workers and returns
/// the results in index order.
///
/// `jobs == 1` short-circuits to a plain serial loop (no threads, no
/// locks). `work` must be safe to call concurrently from many threads.
pub fn run_indexed<T, F>(n: usize, jobs: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(jobs >= 1, "worker count must be at least 1");
    if jobs == 1 || n <= 1 {
        return (0..n).map(&work).collect();
    }

    let workers = jobs.min(n);
    // Seed each worker's deque with a contiguous chunk so cache-warm
    // neighbours (same benchmark, different scheme) start on one thread.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = w * n / workers;
            let hi = (w + 1) * n / workers;
            Mutex::new((lo..hi).collect())
        })
        .collect();

    // One pre-allocated slot per job; each index is written exactly once.
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let work = &work;
            scope.spawn(move || loop {
                let idx = next_index(deques, w);
                match idx {
                    Some(i) => {
                        let value = work(i);
                        *slots[i].lock().unwrap() = Some(value);
                    }
                    None => break,
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every job index was claimed exactly once")
        })
        .collect()
}

/// Pops the next job for worker `w`: front of its own deque, else the
/// back of the longest victim deque (classic work stealing — steal big
/// untouched chunks, leave the victim its cache-warm front).
fn next_index(deques: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = deques[w].lock().unwrap().pop_front() {
        return Some(i);
    }
    loop {
        // Pick the currently longest victim. Lengths are sampled without
        // holding all locks, so the pick can be stale; the retry loop
        // below covers races where the victim drains first.
        let victim = deques
            .iter()
            .enumerate()
            .filter(|(v, _)| *v != w)
            .map(|(v, d)| (d.lock().unwrap().len(), v))
            .max()
            .filter(|(len, _)| *len > 0)
            .map(|(_, v)| v)?;
        if let Some(i) = deques[victim].lock().unwrap().pop_back() {
            return Some(i);
        }
        // Victim drained between the sample and the steal — rescan.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_index_order() {
        for jobs in [1, 2, 3, 8] {
            let out = run_indexed(37, jobs, |i| i * i);
            assert_eq!(
                out,
                (0..37).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..101).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(101, 8, |i| {
            counts[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    fn uneven_work_is_stolen() {
        // Front-loaded delays: worker 0's chunk is slow, so the others
        // must steal for the run to finish promptly. Correctness (not
        // timing) is what's asserted.
        let out = run_indexed(16, 4, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i + 1
        });
        assert_eq!(out, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_jobs() {
        let out = run_indexed(3, 16, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn empty_grid() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }
}
