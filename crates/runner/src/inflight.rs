//! Single-flight coalescing of identical in-flight computations.
//!
//! A long-running service (`ppsim serve`) can receive the same canonical
//! cell request from many clients at once. Running the simulation once
//! and fanning the result out is both a throughput win and a determinism
//! guarantee: every client observes literally the same result value. An
//! [`Inflight`] table holds one *flight* per key for exactly as long as
//! the computation runs: the first caller becomes the **leader** and
//! executes the closure; callers arriving while the flight is open block
//! and receive a clone of the leader's result; callers arriving after
//! the flight closed start a fresh one (by then the result is expected
//! to be in a cache in front of this table — the table coalesces
//! *concurrency*, it is not a memo).
//!
//! Leader panics are caught so followers never deadlock: every waiter
//! (and the leader itself) gets an `Err` describing the panic, and the
//! entry is removed so the key is immediately usable again.

use std::collections::HashMap;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// The per-key rendezvous: the leader publishes into `slot` and wakes
/// every follower blocked on `cv`.
struct Flight<V> {
    slot: Mutex<Option<Result<V, String>>>,
    cv: Condvar,
}

impl<V> Flight<V> {
    fn new() -> Flight<V> {
        Flight {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }
}

/// A table of in-flight computations keyed by `K` (see module docs).
pub struct Inflight<K, V> {
    flights: Mutex<HashMap<K, Arc<Flight<V>>>>,
}

impl<K, V> Default for Inflight<K, V> {
    fn default() -> Self {
        Inflight {
            flights: Mutex::new(HashMap::new()),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Inflight<K, V> {
    /// An empty table.
    pub fn new() -> Self {
        Inflight::default()
    }

    /// Number of currently open flights (observability only).
    pub fn open(&self) -> usize {
        self.flights.lock().unwrap().len()
    }

    /// Runs `work` under single-flight semantics for `key`.
    ///
    /// Returns `(outcome, led)`: `led` is `true` for the caller that
    /// actually executed `work` (exactly one per flight), `false` for
    /// callers that joined an open flight and received a clone of the
    /// leader's value. The outcome is `Err` only if the leader panicked;
    /// the panic is contained and the key is immediately reusable.
    pub fn run<F: FnOnce() -> V>(&self, key: K, work: F) -> (Result<V, String>, bool) {
        let (flight, leader) = {
            let mut map = self.flights.lock().unwrap();
            match map.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight::new());
                    map.insert(key.clone(), Arc::clone(&f));
                    (f, true)
                }
            }
        };

        if !leader {
            let mut slot = flight.slot.lock().unwrap();
            while slot.is_none() {
                slot = flight.cv.wait(slot).unwrap();
            }
            return (slot.clone().unwrap(), false);
        }

        let outcome = catch_unwind(AssertUnwindSafe(work)).map_err(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            format!("in-flight job panicked: {msg}")
        });
        // Close the flight *before* publishing: a caller racing in now
        // starts fresh instead of joining a finished flight.
        self.flights.lock().unwrap().remove(&key);
        *flight.slot.lock().unwrap() = Some(outcome.clone());
        flight.cv.notify_all();
        (outcome, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn serial_calls_each_lead() {
        let table: Inflight<u32, u32> = Inflight::new();
        let (a, led_a) = table.run(1, || 10);
        let (b, led_b) = table.run(1, || 20);
        assert_eq!(a.unwrap(), 10);
        assert_eq!(b.unwrap(), 20, "a closed flight is not a memo");
        assert!(led_a && led_b);
        assert_eq!(table.open(), 0);
    }

    #[test]
    fn concurrent_same_key_runs_once() {
        const N: usize = 8;
        let table: Inflight<&'static str, u64> = Inflight::new();
        let runs = AtomicUsize::new(0);
        let gate = Barrier::new(N);
        let results: Vec<(Result<u64, String>, bool)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..N)
                .map(|_| {
                    scope.spawn(|| {
                        gate.wait();
                        table.run("cell", || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough that the
                            // barrier-released peers join it.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            0xBEEF
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let leaders = results.iter().filter(|(_, led)| *led).count();
        assert_eq!(leaders, 1, "exactly one leader");
        assert_eq!(runs.load(Ordering::SeqCst), 1, "work ran once");
        for (v, _) in &results {
            assert_eq!(*v.as_ref().unwrap(), 0xBEEF);
        }
        assert_eq!(table.open(), 0, "flight closed");
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let table: Inflight<u32, u32> = Inflight::new();
        let out = std::thread::scope(|scope| {
            let a = scope.spawn(|| table.run(1, || 1));
            let b = scope.spawn(|| table.run(2, || 2));
            (a.join().unwrap(), b.join().unwrap())
        });
        assert!(out.0 .1 && out.1 .1, "both led their own flight");
    }

    #[test]
    fn leader_panic_is_contained_and_key_reusable() {
        let table: Inflight<u32, u32> = Inflight::new();
        let (out, led) = table.run(7, || panic!("boom"));
        assert!(led);
        let err = out.unwrap_err();
        assert!(err.contains("boom"), "{err}");
        assert_eq!(table.open(), 0, "panicked flight removed");
        let (ok, _) = table.run(7, || 42);
        assert_eq!(ok.unwrap(), 42, "key usable after a panic");
    }
}
