//! The on-disk result cache.
//!
//! One file per job under the cache directory, named by the job's content
//! hash (`<hash16>.result`). The format is a hand-rolled line-oriented
//! text format (the workspace bans serde):
//!
//! ```text
//! ppsim-cache v2
//! job.bench=gzip
//! job.ifconv=0
//! ...                      # every line of Job::canon, prefixed "job."
//! stat.cycles=123456
//! stat.committed=500000
//! ...                      # every SimStats counter, fixed order
//! stat.stall.fetch_miss=100
//! ...                      # every stall bucket, StallBucket::ALL order
//! pc.17=5000,12
//! ...                      # per-branch (slot, execs, mispredicts) rows
//! static.insns=871
//! static.cond_branches=42
//! time.wall_micros=8120
//! ...                      # capture/compile/sim timing, telemetry-only
//! end
//! ```
//!
//! Loads verify three things: the version header, the *full* canonical
//! job encoding (so a hash collision or a semantics change in any input
//! axis reads as a miss, never as a wrong result), and the `end` sentinel
//! (so a truncated write from a killed process reads as a miss). Stores
//! write to a `.tmp` sibling and rename into place, which is atomic on
//! POSIX — concurrent runs never observe half-written entries.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::SystemTime;

use ppsim_mem::CacheStats;
use ppsim_obs::StallBucket;
use ppsim_pipeline::SimStats;

use crate::job::{Job, JobResult};

/// Magic first line; bump the version to invalidate every entry.
/// v2 added the stall-attribution buckets and the per-branch rows; v3
/// added the committed-path stage counters (`fetched`, `renamed`) and
/// `early_resolved_mispredicts`; v4 added the `time.*` telemetry lines
/// (wall/compile/capture/sim); v5 added the `sample=` axis to the
/// canonical job encoding, so a sampled window and a full run can never
/// alias; v6 marks the fused-grid era — per-cell keys are unchanged, but
/// the timing-telemetry lines a fused pass stores are per-lane shares,
/// so entries written by pre-fusion binaries are retired wholesale
/// rather than mixed into fused-era telemetry; v7 added the always-
/// emitted `trace=` axis (external trace ingestion) to the canonical
/// job encoding — every canon string changed, so pre-trace entries
/// would all miss on the canon comparison anyway, and the bump retires
/// them instead of leaving dead files behind. Entries from any other
/// version — older or newer — read as misses (the exact-match header
/// check below), never as wrong results.
const HEADER: &str = "ppsim-cache v7";
/// Last line; its absence marks a truncated entry.
const FOOTER: &str = "end";

/// On-disk cache usage, as reported by [`DiskCache::usage`] and the
/// `ppsim cache stats` subcommand.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheUsage {
    /// Result entries currently stored.
    pub entries: u64,
    /// Bytes held by result entries (recency sidecars excluded).
    pub bytes: u64,
}

/// A directory of cached job results.
///
/// Optionally size-capped: when a byte budget is set, every store sweeps
/// the directory and evicts least-recently-used entries until the total
/// fits. Recency is approximated with the filesystem: a store's own
/// mtime marks creation, and every load hit drops a zero-byte
/// `<hash>.touch` sidecar beside the entry (std has no way to bump an
/// mtime directly), so an entry's recency is the newer of the two.
#[derive(Clone, Debug)]
pub struct DiskCache {
    dir: PathBuf,
    max_bytes: Option<u64>,
    evictions: Arc<AtomicU64>,
}

impl DiskCache {
    /// Opens (and creates if needed) an uncapped cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<DiskCache> {
        DiskCache::open_capped(dir, None)
    }

    /// Opens a cache with an optional byte budget. `Some(0)` is treated
    /// as "evict everything on every store" — legal, if eccentric.
    pub fn open_capped(
        dir: impl Into<PathBuf>,
        max_bytes: Option<u64>,
    ) -> std::io::Result<DiskCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DiskCache {
            dir,
            max_bytes,
            evictions: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The default cache location: `$PPSIM_CACHE_DIR`, else
    /// `target/ppsim-cache` under the current directory.
    pub fn default_dir() -> PathBuf {
        std::env::var_os("PPSIM_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target").join("ppsim-cache"))
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, job: &Job) -> PathBuf {
        self.dir.join(format!("{}.result", job.hash_hex()))
    }

    /// Loads the result for `job`, or `None` on any kind of miss
    /// (absent, truncated, stale canon, unparseable). Corrupt entries
    /// are treated as misses, not errors — the runner recomputes and
    /// overwrites them. A hit refreshes the entry's recency.
    pub fn load(&self, job: &Job) -> Option<JobResult> {
        let path = self.entry_path(job);
        let text = fs::read_to_string(&path).ok()?;
        let result = parse_entry(&text, job)?;
        // Refresh recency. A failed touch only degrades the eviction
        // order, never correctness.
        let _ = fs::write(path.with_extension("touch"), b"");
        Some(result)
    }

    /// Stores the result for `job` atomically (`.tmp` + rename), then
    /// enforces the byte budget if one is set.
    pub fn store(&self, job: &Job, result: &JobResult) -> std::io::Result<()> {
        let path = self.entry_path(job);
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(render_entry(job, result).as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        if self.max_bytes.is_some() {
            self.sweep();
        }
        Ok(())
    }

    /// Entries evicted by this handle (and its clones) since open.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Current cache usage (entry count and byte total).
    pub fn usage(&self) -> CacheUsage {
        let mut usage = CacheUsage::default();
        for (_, len, _) in self.scan() {
            usage.entries += 1;
            usage.bytes += len;
        }
        usage
    }

    /// Removes every entry (results, recency sidecars, stray temp
    /// files), returning how many result entries were deleted.
    pub fn clear(&self) -> std::io::Result<u64> {
        let mut removed = 0;
        for dirent in fs::read_dir(&self.dir)? {
            let path = dirent?.path();
            match path.extension().and_then(|e| e.to_str()) {
                Some("result") => {
                    fs::remove_file(&path)?;
                    removed += 1;
                }
                Some("touch" | "tmp") => {
                    let _ = fs::remove_file(&path);
                }
                _ => {}
            }
        }
        Ok(removed)
    }

    /// Every result entry as `(path, bytes, recency)`, where recency is
    /// the newer of the entry's own mtime and its touch-sidecar's.
    fn scan(&self) -> Vec<(PathBuf, u64, SystemTime)> {
        let Ok(dirents) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut entries = Vec::new();
        for dirent in dirents.flatten() {
            let path = dirent.path();
            if path.extension().and_then(|e| e.to_str()) != Some("result") {
                continue;
            }
            let Ok(meta) = dirent.metadata() else {
                continue;
            };
            let mut recency = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            if let Ok(touch) = fs::metadata(path.with_extension("touch")) {
                if let Ok(t) = touch.modified() {
                    recency = recency.max(t);
                }
            }
            entries.push((path, meta.len(), recency));
        }
        entries
    }

    /// Evicts least-recently-used entries until the directory fits the
    /// byte budget. Recency ties break on file name so concurrent
    /// sweepers agree on the victim order.
    fn sweep(&self) {
        let Some(max) = self.max_bytes else { return };
        let mut entries = self.scan();
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        if total <= max {
            return;
        }
        entries.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        for (path, len, _) in entries {
            if total <= max {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                let _ = fs::remove_file(path.with_extension("touch"));
                total = total.saturating_sub(len);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn render_entry(job: &Job, result: &JobResult) -> String {
    let mut s = String::with_capacity(2048);
    s.push_str(HEADER);
    s.push('\n');
    for line in job.canon().lines() {
        s.push_str("job.");
        s.push_str(line);
        s.push('\n');
    }
    for (key, value) in stat_fields(&result.stats) {
        s.push_str("stat.");
        s.push_str(key);
        s.push('=');
        s.push_str(&value.to_string());
        s.push('\n');
    }
    // branch_pcs is sorted by slot in SimStats, so this section — like
    // everything else in the entry — renders deterministically.
    for &(slot, execs, events) in &result.stats.branch_pcs {
        s.push_str(&format!("pc.{slot}={execs},{events}\n"));
    }
    s.push_str(&format!("static.insns={}\n", result.static_insns));
    s.push_str(&format!(
        "static.cond_branches={}\n",
        result.static_cond_branches
    ));
    // Timing lines record what the original run cost. They are telemetry
    // only: a hit still reports `from_cache` and the runner never counts
    // replayed timings toward wall totals, so report bytes stay
    // independent of cache state.
    s.push_str(&format!("time.wall_micros={}\n", result.wall_micros));
    s.push_str(&format!("time.compile_micros={}\n", result.compile_micros));
    s.push_str(&format!("time.capture_micros={}\n", result.capture_micros));
    s.push_str(&format!("time.sim_micros={}\n", result.sim_micros));
    s.push_str(FOOTER);
    s.push('\n');
    s
}

fn parse_entry(text: &str, job: &Job) -> Option<JobResult> {
    let mut lines = text.lines();
    if lines.next()? != HEADER {
        return None;
    }
    // Verify the stored canon matches this job's, line for line. A
    // mismatch means the hash collided or an input axis changed meaning;
    // either way the entry is stale.
    let canon = job.canon();
    let mut canon_lines = canon.lines();
    let mut rest = lines.peekable();
    while let Some(line) = rest.peek() {
        match line.strip_prefix("job.") {
            Some(stored) => {
                if canon_lines.next() != Some(stored) {
                    return None;
                }
                rest.next();
            }
            None => break,
        }
    }
    if canon_lines.next().is_some() {
        return None; // stored canon is a strict prefix — stale
    }

    let mut stats = SimStats::default();
    let mut static_insns = None;
    let mut static_cond_branches = None;
    let mut times = [0u64; 4];
    let mut saw_footer = false;
    for line in rest {
        if line == FOOTER {
            saw_footer = true;
            break;
        }
        let (key, value) = line.split_once('=')?;
        if let Some(slot) = key.strip_prefix("pc.") {
            let slot: u32 = slot.parse().ok()?;
            let (execs, events) = value.split_once(',')?;
            stats
                .branch_pcs
                .push((slot, execs.parse().ok()?, events.parse().ok()?));
            continue;
        }
        let value: u64 = value.parse().ok()?;
        if let Some(stat) = key.strip_prefix("stat.") {
            set_stat_field(&mut stats, stat, value)?;
        } else if key == "static.insns" {
            static_insns = Some(value);
        } else if key == "static.cond_branches" {
            static_cond_branches = Some(value);
        } else if let Some(phase) = key.strip_prefix("time.") {
            match phase {
                "wall_micros" => times[0] = value,
                "compile_micros" => times[1] = value,
                "capture_micros" => times[2] = value,
                "sim_micros" => times[3] = value,
                _ => return None,
            }
        } else {
            return None;
        }
    }
    if !saw_footer {
        return None; // truncated write
    }
    Some(JobResult {
        stats,
        static_insns: static_insns?,
        static_cond_branches: static_cond_branches?,
        from_cache: true,
        wall_micros: times[0],
        compile_micros: times[1],
        capture_micros: times[2],
        sim_micros: times[3],
        trace_memo_hit: false,
    })
}

/// Every SimStats counter as (key, value), in the fixed serialization
/// order. Adding a field to SimStats without extending this list is
/// caught by the round-trip test below.
fn stat_fields(s: &SimStats) -> Vec<(&'static str, u64)> {
    let mut out = vec![
        ("cycles", s.cycles),
        ("committed", s.committed),
        ("fetched", s.fetched),
        ("renamed", s.renamed),
        ("cond_branches", s.cond_branches),
        ("mispredicts", s.mispredicts),
        ("uncond_branches", s.uncond_branches),
        ("compares", s.compares),
        ("early_resolved", s.early_resolved),
        ("early_resolved_saves", s.early_resolved_saves),
        ("early_resolved_mispredicts", s.early_resolved_mispredicts),
        ("shadow_mispredicts", s.shadow_mispredicts),
        ("overrides", s.overrides),
        ("predicate_predictions", s.predicate_predictions),
        ("predicate_mispredictions", s.predicate_mispredictions),
        ("cancelled_at_rename", s.cancelled_at_rename),
        ("unguarded_at_rename", s.unguarded_at_rename),
        ("predication_flushes", s.predication_flushes),
        ("nullified", s.nullified),
    ];
    for bucket in StallBucket::ALL {
        out.push((stall_key(bucket), s.stall.get(bucket)));
    }
    for (level, c) in [("l1i", &s.mem.l1i), ("l1d", &s.mem.l1d), ("l2", &s.mem.l2)] {
        out.push((cache_key(level, "accesses"), c.accesses));
        out.push((cache_key(level, "hits"), c.hits));
        out.push((cache_key(level, "primary_misses"), c.primary_misses));
        out.push((cache_key(level, "secondary_misses"), c.secondary_misses));
        out.push((cache_key(level, "mshr_stall_cycles"), c.mshr_stall_cycles));
        out.push((cache_key(level, "writebacks"), c.writebacks));
        out.push((
            cache_key(level, "write_buffer_stall_cycles"),
            c.write_buffer_stall_cycles,
        ));
    }
    out.push(("itlb.hits", s.mem.itlb.0));
    out.push(("itlb.misses", s.mem.itlb.1));
    out.push(("dtlb.hits", s.mem.dtlb.0));
    out.push(("dtlb.misses", s.mem.dtlb.1));
    out
}

/// Static `stall.<bucket>` keys (serialization wants `&'static str`).
fn stall_key(bucket: StallBucket) -> &'static str {
    match bucket {
        StallBucket::FetchMiss => "stall.fetch_miss",
        StallBucket::RenameStall => "stall.rename_stall",
        StallBucket::IssueWait => "stall.issue_wait",
        StallBucket::CommitBound => "stall.commit_bound",
        StallBucket::FlushRecovery => "stall.flush_recovery",
        StallBucket::PredicationFlush => "stall.predication_flush",
    }
}

/// Static key strings for the three cache levels × seven counters.
fn cache_key(level: &str, field: &str) -> &'static str {
    // A match table keeps the keys `&'static str` without allocation.
    macro_rules! table {
        ($($lvl:literal, $fld:literal => $key:literal;)*) => {
            match (level, field) {
                $(($lvl, $fld) => $key,)*
                _ => unreachable!("unknown cache stat {level}.{field}"),
            }
        };
    }
    table! {
        "l1i", "accesses" => "l1i.accesses";
        "l1i", "hits" => "l1i.hits";
        "l1i", "primary_misses" => "l1i.primary_misses";
        "l1i", "secondary_misses" => "l1i.secondary_misses";
        "l1i", "mshr_stall_cycles" => "l1i.mshr_stall_cycles";
        "l1i", "writebacks" => "l1i.writebacks";
        "l1i", "write_buffer_stall_cycles" => "l1i.write_buffer_stall_cycles";
        "l1d", "accesses" => "l1d.accesses";
        "l1d", "hits" => "l1d.hits";
        "l1d", "primary_misses" => "l1d.primary_misses";
        "l1d", "secondary_misses" => "l1d.secondary_misses";
        "l1d", "mshr_stall_cycles" => "l1d.mshr_stall_cycles";
        "l1d", "writebacks" => "l1d.writebacks";
        "l1d", "write_buffer_stall_cycles" => "l1d.write_buffer_stall_cycles";
        "l2", "accesses" => "l2.accesses";
        "l2", "hits" => "l2.hits";
        "l2", "primary_misses" => "l2.primary_misses";
        "l2", "secondary_misses" => "l2.secondary_misses";
        "l2", "mshr_stall_cycles" => "l2.mshr_stall_cycles";
        "l2", "writebacks" => "l2.writebacks";
        "l2", "write_buffer_stall_cycles" => "l2.write_buffer_stall_cycles";
    }
}

fn set_stat_field(s: &mut SimStats, key: &str, v: u64) -> Option<()> {
    let cache_field = |c: &mut CacheStats, field: &str, v: u64| -> Option<()> {
        match field {
            "accesses" => c.accesses = v,
            "hits" => c.hits = v,
            "primary_misses" => c.primary_misses = v,
            "secondary_misses" => c.secondary_misses = v,
            "mshr_stall_cycles" => c.mshr_stall_cycles = v,
            "writebacks" => c.writebacks = v,
            "write_buffer_stall_cycles" => c.write_buffer_stall_cycles = v,
            _ => return None,
        }
        Some(())
    };
    if let Some((level, field)) = key.split_once('.') {
        return match level {
            "stall" => {
                let bucket = StallBucket::parse(field)?;
                s.stall.set(bucket, v);
                Some(())
            }
            "l1i" => cache_field(&mut s.mem.l1i, field, v),
            "l1d" => cache_field(&mut s.mem.l1d, field, v),
            "l2" => cache_field(&mut s.mem.l2, field, v),
            "itlb" | "dtlb" => {
                let tlb = if level == "itlb" {
                    &mut s.mem.itlb
                } else {
                    &mut s.mem.dtlb
                };
                match field {
                    "hits" => tlb.0 = v,
                    "misses" => tlb.1 = v,
                    _ => return None,
                }
                Some(())
            }
            _ => None,
        };
    }
    match key {
        "cycles" => s.cycles = v,
        "committed" => s.committed = v,
        "fetched" => s.fetched = v,
        "renamed" => s.renamed = v,
        "cond_branches" => s.cond_branches = v,
        "mispredicts" => s.mispredicts = v,
        "uncond_branches" => s.uncond_branches = v,
        "compares" => s.compares = v,
        "early_resolved" => s.early_resolved = v,
        "early_resolved_saves" => s.early_resolved_saves = v,
        "early_resolved_mispredicts" => s.early_resolved_mispredicts = v,
        "shadow_mispredicts" => s.shadow_mispredicts = v,
        "overrides" => s.overrides = v,
        "predicate_predictions" => s.predicate_predictions = v,
        "predicate_mispredictions" => s.predicate_mispredictions = v,
        "cancelled_at_rename" => s.cancelled_at_rename = v,
        "unguarded_at_rename" => s.unguarded_at_rename = v,
        "predication_flushes" => s.predication_flushes = v,
        "nullified" => s.nullified = v,
        _ => return None,
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim_pipeline::{CoreConfig, PredicationModel, SchemeKind};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ppsim-cache-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn job() -> Job {
        Job::new(
            "gzip",
            true,
            SchemeKind::PepPa,
            PredicationModel::Selective,
            40_000,
            60_000,
            CoreConfig::paper(),
        )
    }

    fn result() -> JobResult {
        let mut r = JobResult {
            static_insns: 871,
            static_cond_branches: 42,
            ..JobResult::default()
        };
        // Fill every counter with a distinct value so a swapped or
        // dropped field breaks the round trip.
        r.stats.cycles = 101;
        r.stats.committed = 102;
        r.stats.cond_branches = 103;
        r.stats.mispredicts = 104;
        r.stats.uncond_branches = 105;
        r.stats.compares = 106;
        r.stats.early_resolved = 107;
        r.stats.early_resolved_saves = 108;
        r.stats.shadow_mispredicts = 109;
        r.stats.overrides = 110;
        r.stats.predicate_predictions = 111;
        r.stats.predicate_mispredictions = 112;
        r.stats.cancelled_at_rename = 113;
        r.stats.unguarded_at_rename = 114;
        r.stats.predication_flushes = 115;
        r.stats.nullified = 116;
        r.stats.mem.l1i.accesses = 201;
        r.stats.mem.l1i.hits = 202;
        r.stats.mem.l1d.primary_misses = 203;
        r.stats.mem.l1d.writebacks = 204;
        r.stats.mem.l2.secondary_misses = 205;
        r.stats.mem.l2.mshr_stall_cycles = 206;
        r.stats.mem.l2.write_buffer_stall_cycles = 207;
        r.stats.mem.itlb = (301, 302);
        r.stats.mem.dtlb = (303, 304);
        for (i, bucket) in StallBucket::ALL.into_iter().enumerate() {
            r.stats.stall.set(bucket, 401 + i as u64);
        }
        r.stats.branch_pcs = vec![(7, 501, 502), (19, 503, 0)];
        r.wall_micros = 601;
        r.compile_micros = 602;
        r.capture_micros = 603;
        r.sim_micros = 604;
        r
    }

    #[test]
    fn round_trip_preserves_every_counter() {
        let dir = temp_dir("roundtrip");
        let cache = DiskCache::open(&dir).unwrap();
        let j = job();
        let r = result();
        assert!(cache.load(&j).is_none(), "cold cache must miss");
        cache.store(&j, &r).unwrap();
        let loaded = cache.load(&j).expect("warm cache must hit");
        assert!(loaded.from_cache);
        assert_eq!(stat_fields(&loaded.stats), stat_fields(&r.stats));
        assert_eq!(loaded.stats.branch_pcs, r.stats.branch_pcs);
        assert_eq!(loaded.static_insns, r.static_insns);
        assert_eq!(loaded.static_cond_branches, r.static_cond_branches);
        assert_eq!(
            (
                loaded.wall_micros,
                loaded.compile_micros,
                loaded.capture_micros,
                loaded.sim_micros
            ),
            (601, 602, 603, 604),
            "v4 entries round-trip the phase timings"
        );
        assert!(!loaded.trace_memo_hit, "a disk hit is not a memo hit");
        assert_eq!(
            loaded.stats.metrics().to_json().to_string(),
            r.stats.metrics().to_json().to_string(),
            "a cache hit must replay the full metric block bit-identically"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_job_misses() {
        let dir = temp_dir("miss");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store(&job(), &result()).unwrap();
        let other = Job {
            commits: 99,
            ..job()
        };
        assert!(cache.load(&other).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_canon_under_same_name_misses() {
        // Simulate a hash collision / semantics change: an entry whose
        // file name matches but whose stored canon differs must miss.
        let dir = temp_dir("stale");
        let cache = DiskCache::open(&dir).unwrap();
        let j = job();
        let mut text = render_entry(&j, &result());
        text = text.replace("job.bench=gzip", "job.bench=vortex");
        fs::write(cache.dir().join(format!("{}.result", j.hash_hex())), text).unwrap();
        assert!(cache.load(&j).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_format_version_misses() {
        // An entry written by any other format version — the v6 layout
        // that predates the trace axis, an ancient v3, or a future v8 —
        // must read as a miss, never be parsed with today's field
        // semantics.
        let dir = temp_dir("version");
        let cache = DiskCache::open(&dir).unwrap();
        let j = job();
        let current = render_entry(&j, &result());
        assert!(current.starts_with("ppsim-cache v7\n"), "{current}");
        for stale in ["ppsim-cache v3", "ppsim-cache v6", "ppsim-cache v8"] {
            let text = current.replacen(HEADER, stale, 1);
            fs::write(cache.dir().join(format!("{}.result", j.hash_hex())), text).unwrap();
            assert!(cache.load(&j).is_none(), "{stale} entry must miss");
        }
        // Restoring the real header makes the same bytes hit again.
        fs::write(
            cache.dir().join(format!("{}.result", j.hash_hex())),
            current,
        )
        .unwrap();
        assert!(cache.load(&j).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_misses() {
        let dir = temp_dir("trunc");
        let cache = DiskCache::open(&dir).unwrap();
        let j = job();
        let full = render_entry(&j, &result());
        let cut = &full[..full.len() - 20];
        fs::write(cache.dir().join(format!("{}.result", j.hash_hex())), cut).unwrap();
        assert!(cache.load(&j).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Distinct jobs for eviction tests (commits is the identity axis).
    fn job_n(commits: u64) -> Job {
        Job { commits, ..job() }
    }

    #[test]
    fn usage_counts_entries_and_clear_empties() {
        let dir = temp_dir("usage");
        let cache = DiskCache::open(&dir).unwrap();
        assert_eq!(cache.usage(), CacheUsage::default());
        cache.store(&job_n(1), &result()).unwrap();
        cache.store(&job_n(2), &result()).unwrap();
        let u = cache.usage();
        assert_eq!(u.entries, 2);
        assert!(u.bytes > 0);
        assert_eq!(cache.clear().unwrap(), 2);
        assert_eq!(cache.usage(), CacheUsage::default());
        assert!(cache.load(&job_n(1)).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn capped_cache_evicts_oldest_first() {
        let dir = temp_dir("evict");
        // Budget for roughly two entries: measure one, cap at 2.5×.
        let probe = DiskCache::open(&dir).unwrap();
        probe.store(&job_n(0), &result()).unwrap();
        let one = probe.usage().bytes;
        probe.clear().unwrap();
        let cache = DiskCache::open_capped(&dir, Some(one * 5 / 2)).unwrap();
        for n in 1..=3 {
            cache.store(&job_n(n), &result()).unwrap();
            // Keep mtimes strictly ordered on coarse-grained filesystems.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(cache.evictions(), 1, "third store evicted one entry");
        assert!(cache.load(&job_n(1)).is_none(), "oldest entry evicted");
        assert!(cache.load(&job_n(2)).is_some());
        assert!(cache.load(&job_n(3)).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_refreshes_recency() {
        let dir = temp_dir("lru");
        let probe = DiskCache::open(&dir).unwrap();
        probe.store(&job_n(0), &result()).unwrap();
        let one = probe.usage().bytes;
        probe.clear().unwrap();
        let cache = DiskCache::open_capped(&dir, Some(one * 5 / 2)).unwrap();
        cache.store(&job_n(1), &result()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        cache.store(&job_n(2), &result()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        // Touch entry 1 so entry 2 becomes the LRU victim.
        assert!(cache.load(&job_n(1)).is_some());
        std::thread::sleep(std::time::Duration::from_millis(5));
        cache.store(&job_n(3), &result()).unwrap();
        assert!(cache.load(&job_n(1)).is_some(), "recently used survives");
        assert!(cache.load(&job_n(2)).is_none(), "LRU entry evicted");
        assert!(cache.load(&job_n(3)).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncapped_cache_never_evicts() {
        let dir = temp_dir("uncapped");
        let cache = DiskCache::open(&dir).unwrap();
        for n in 1..=8 {
            cache.store(&job_n(n), &result()).unwrap();
        }
        assert_eq!(cache.usage().entries, 8);
        assert_eq!(cache.evictions(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_entry_misses() {
        let dir = temp_dir("garbage");
        let cache = DiskCache::open(&dir).unwrap();
        let j = job();
        fs::write(
            cache.dir().join(format!("{}.result", j.hash_hex())),
            "not a cache file",
        )
        .unwrap();
        assert!(cache.load(&j).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
