//! The job model: one simulation cell of an experiment grid.
//!
//! A [`Job`] captures *every* input that can influence a simulation's
//! statistics — benchmark, compile options, prediction scheme, predication
//! model, predictor geometry overrides, machine configuration and commit
//! budget. Its [`Job::canon`] encoding is a canonical line-oriented text
//! rendering of all of those inputs; the FNV-1a hash of that text is the
//! job's identity, used to key the on-disk result cache and to detect
//! stale entries. Two jobs with equal hashes but different canonical
//! encodings are treated as distinct (the cache compares the full
//! encoding, not just the hash).

use ppsim_pipeline::{CoreConfig, PredicationModel, SampleSpec, SchemeKind, SimStats};
use ppsim_predictors::{PerceptronConfig, PredicateConfig};

use crate::hash::{fnv1a64, hex64};

/// One window of a sampled run: the full schedule plus which of its
/// windows this job simulates. A sampled grid cell expands into `count`
/// of these (see `Runner::run_grid_sampled`); each is cached
/// independently, so re-running with one more window only simulates the
/// new window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleSlice {
    /// The full sampling schedule.
    pub spec: SampleSpec,
    /// Which window (`0..spec.count`) this job runs.
    pub index: u32,
}

/// Identity of an externally supplied trace stream standing in for the
/// compile → capture pipeline (see `Runner::register_trace`). The
/// stream's *content hash* (`ppsim_isa::pptrace::content_hash`) is the
/// workload identity — two imports of byte-identical streams share
/// cache entries regardless of file name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId {
    /// Content hash of the stream (instructions, records, addresses,
    /// halt marker — not the file's name/note metadata).
    pub content: u64,
    /// Whether the stream is a degraded branches-only import
    /// (`ppsim_isa::pptrace::import_cbp`).
    pub branches_only: bool,
}

/// One simulation cell: (benchmark, compile flags, scheme, predication
/// model, machine, budget) plus optional predictor-geometry overrides.
#[derive(Clone, Debug, PartialEq)]
pub struct Job {
    /// Benchmark name from `ppsim_compiler::spec2000_suite()`.
    pub benchmark: String,
    /// Compile with profile-guided if-conversion.
    pub ifconv: bool,
    /// Override of the if-converter's profiled-misprediction threshold
    /// (`None` = the compiler default).
    pub ifconv_threshold: Option<f64>,
    /// Functional-emulator steps for the compiler's profiling run.
    pub profile_steps: u64,
    /// Branch-prediction organization.
    pub scheme: SchemeKind,
    /// How if-converted instructions execute.
    pub predication: PredicationModel,
    /// Attach the shadow conventional predictor (Figure 6b attribution).
    pub shadow: bool,
    /// Committed instructions to simulate.
    pub commits: u64,
    /// The machine.
    pub core: CoreConfig,
    /// Perceptron geometry override for the conventional/two-level
    /// predictor (`None` = paper 148 KB).
    pub perceptron: Option<PerceptronConfig>,
    /// Predicate-predictor configuration override (`None` = paper 148 KB,
    /// 3-bit confidence).
    pub predicate: Option<PredicateConfig>,
    /// Sampled-simulation window (`None` = a full run over `commits`).
    pub sample: Option<SampleSlice>,
    /// External trace stream driving this cell instead of compiling and
    /// capturing `benchmark` (`None` = the normal compile path). When
    /// set, `benchmark` is a display name only and the compile axes
    /// (`ifconv`, `ifconv_threshold`, `profile_steps`) are inert; the
    /// trace must be registered with the executing runner
    /// (`Runner::register_trace`).
    pub trace: Option<TraceId>,
}

impl Job {
    /// A job with no overrides, on the given machine.
    pub fn new(
        benchmark: impl Into<String>,
        ifconv: bool,
        scheme: SchemeKind,
        predication: PredicationModel,
        commits: u64,
        profile_steps: u64,
        core: CoreConfig,
    ) -> Self {
        Job {
            benchmark: benchmark.into(),
            ifconv,
            ifconv_threshold: None,
            profile_steps,
            scheme,
            predication,
            shadow: false,
            commits,
            core,
            perceptron: None,
            predicate: None,
            sample: None,
            trace: None,
        }
    }

    /// A cell driven by a registered external trace: `name` is the
    /// display label, `trace` the stream identity. Compile axes are
    /// zeroed (they do not apply to imported streams).
    pub fn traced(
        name: impl Into<String>,
        trace: TraceId,
        scheme: SchemeKind,
        predication: PredicationModel,
        commits: u64,
        core: CoreConfig,
    ) -> Self {
        Job {
            trace: Some(trace),
            ..Job::new(name, false, scheme, predication, commits, 0, core)
        }
    }

    /// Canonical text encoding of every input. Line-oriented `key=value`
    /// pairs in a fixed order; this exact string (not the struct) defines
    /// the job's identity.
    pub fn canon(&self) -> String {
        let mut s = String::with_capacity(640);
        let kv = |s: &mut String, k: &str, v: &str| {
            s.push_str(k);
            s.push('=');
            s.push_str(v);
            s.push('\n');
        };
        kv(&mut s, "bench", &self.benchmark);
        kv(&mut s, "ifconv", if self.ifconv { "1" } else { "0" });
        kv(
            &mut s,
            "ifconv_threshold",
            &self
                .ifconv_threshold
                .map_or("-".to_string(), |t| hex64(t.to_bits())),
        );
        kv(&mut s, "profile_steps", &self.profile_steps.to_string());
        kv(&mut s, "scheme", self.scheme.name());
        kv(
            &mut s,
            "predication",
            match self.predication {
                PredicationModel::Cmov => "cmov",
                PredicationModel::Selective => "selective",
            },
        );
        kv(&mut s, "shadow", if self.shadow { "1" } else { "0" });
        kv(&mut s, "commits", &self.commits.to_string());
        let c = &self.core;
        kv(
            &mut s,
            "core",
            &format!(
                "fw:{} rw:{} cw:{} rob:{} iqi:{} iqf:{} iqb:{} lq:{} sq:{} pi:{} pf:{} pp:{} \
                 iu:{} fu:{} mp:{} bu:{} fs:{} pen:{} ob:{} repair:{}",
                c.fetch_width,
                c.rename_width,
                c.commit_width,
                c.rob_entries,
                c.iq_int,
                c.iq_fp,
                c.iq_branch,
                c.lq_entries,
                c.sq_entries,
                c.phys_int,
                c.phys_fp,
                c.phys_pred,
                c.int_units,
                c.fp_units,
                c.mem_ports,
                c.branch_units,
                c.front_stages,
                c.mispredict_penalty,
                c.override_bubble,
                u8::from(c.history_repair),
            ),
        );
        let l = &self.core.latencies;
        kv(
            &mut s,
            "latencies",
            &format!(
                "alu:{} mul:{} falu:{} fmul:{} fdiv:{} br:{}",
                l.int_alu, l.int_mul, l.fp_alu, l.fp_mul, l.fp_div, l.branch
            ),
        );
        kv(
            &mut s,
            "perceptron",
            &Self::canon_perceptron(self.perceptron.as_ref()),
        );
        kv(
            &mut s,
            "predicate",
            &self.predicate.as_ref().map_or("-".to_string(), |p| {
                format!(
                    "{} conf:{}",
                    Self::canon_perceptron(Some(&p.perceptron)),
                    p.conf_bits
                )
            }),
        );
        kv(
            &mut s,
            "sample",
            &self.sample.as_ref().map_or("-".to_string(), |slice| {
                format!("{}@{}", slice.spec.canon(), slice.index)
            }),
        );
        kv(
            &mut s,
            "trace",
            &self.trace.as_ref().map_or("-".to_string(), |t| {
                format!(
                    "{} bo:{}",
                    hex64(t.content),
                    if t.branches_only { "1" } else { "0" }
                )
            }),
        );
        s
    }

    fn canon_perceptron(p: Option<&PerceptronConfig>) -> String {
        p.map_or("-".to_string(), |p| {
            format!(
                "rows:{} ghr:{} lhr:{} lht:{} theta:{}",
                p.rows,
                p.ghr_bits,
                p.lhr_bits,
                p.lht_entries,
                p.theta.map_or("-".to_string(), |t| t.to_string()),
            )
        })
    }

    /// The job's content hash (FNV-1a over [`Job::canon`]).
    pub fn hash(&self) -> u64 {
        fnv1a64(self.canon().as_bytes())
    }

    /// The hash as the 16-digit hex string used in cache file names.
    pub fn hash_hex(&self) -> String {
        hex64(self.hash())
    }

    /// A short human-readable label for telemetry and progress output.
    pub fn label(&self) -> String {
        format!(
            "{}/{}{}{}{}",
            self.benchmark,
            self.scheme.name(),
            if self.ifconv { "/ifconv" } else { "" },
            if self.shadow { "/shadow" } else { "" },
            self.sample
                .as_ref()
                .map_or(String::new(), |s| format!("/s{}", s.index)),
        )
    }
}

/// The outcome of one job: simulation statistics plus the static-code
/// counters the sweeps need, and execution telemetry.
#[derive(Clone, Debug, Default)]
pub struct JobResult {
    /// Simulation counters.
    pub stats: SimStats,
    /// Static instructions in the compiled binary.
    pub static_insns: u64,
    /// Static conditional branches in the compiled binary (the
    /// if-conversion-threshold sweep's x-axis).
    pub static_cond_branches: u64,
    /// Whether the result was served from the on-disk cache.
    pub from_cache: bool,
    /// Wall time spent producing the result (0 for cache hits).
    pub wall_micros: u64,
    /// Wall time of the compile phase (0 for cache hits and when the
    /// compile memo already held the binary).
    pub compile_micros: u64,
    /// Wall time of the trace-capture phase (0 for cache hits, for
    /// trace-memo hits and on the inline-machine path).
    pub capture_micros: u64,
    /// Wall time of the simulate phase (0 for cache hits).
    pub sim_micros: u64,
    /// Whether a replay job's trace came from the in-process memo
    /// (always `false` for cache hits and inline jobs).
    pub trace_memo_hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Job {
        Job::new(
            "gzip",
            false,
            SchemeKind::Predicate,
            PredicationModel::Cmov,
            500_000,
            200_000,
            CoreConfig::paper(),
        )
    }

    #[test]
    fn canon_is_stable_and_complete() {
        let c = base().canon();
        for key in [
            "bench=gzip",
            "ifconv=0",
            "scheme=predicate",
            "predication=cmov",
            "commits=500000",
            "rob:256",
            "repair:1",
            "perceptron=-",
            "sample=-",
            "trace=-",
        ] {
            assert!(c.contains(key), "missing {key} in:\n{c}");
        }
        assert_eq!(c, base().canon(), "canonical encoding is deterministic");
    }

    #[test]
    fn every_axis_changes_the_hash() {
        let b = base();
        let h = b.hash();
        let variants = [
            Job {
                benchmark: "gcc".into(),
                ..b.clone()
            },
            Job {
                ifconv: true,
                ..b.clone()
            },
            Job {
                ifconv_threshold: Some(0.3),
                ..b.clone()
            },
            Job {
                profile_steps: 1,
                ..b.clone()
            },
            Job {
                scheme: SchemeKind::Conventional,
                ..b.clone()
            },
            Job {
                predication: PredicationModel::Selective,
                ..b.clone()
            },
            Job {
                shadow: true,
                ..b.clone()
            },
            Job {
                commits: 1,
                ..b.clone()
            },
            Job {
                core: CoreConfig {
                    rob_entries: 8,
                    ..CoreConfig::paper()
                },
                ..b.clone()
            },
            Job {
                core: CoreConfig {
                    history_repair: false,
                    ..CoreConfig::paper()
                },
                ..b.clone()
            },
            Job {
                perceptron: Some(PerceptronConfig::paper_148kb()),
                ..b.clone()
            },
            Job {
                predicate: Some(PredicateConfig::paper_148kb()),
                ..b.clone()
            },
            Job {
                sample: Some(SampleSlice {
                    spec: SampleSpec::default_spec(),
                    index: 0,
                }),
                ..b.clone()
            },
            Job {
                trace: Some(TraceId {
                    content: 0xdead_beef,
                    branches_only: false,
                }),
                ..b.clone()
            },
        ];
        for v in &variants {
            assert_ne!(v.hash(), h, "axis not hashed: {v:?}");
        }
        // Different windows of the same schedule are distinct jobs.
        let s0 = Job {
            sample: Some(SampleSlice {
                spec: SampleSpec::default_spec(),
                index: 0,
            }),
            ..b.clone()
        };
        let s1 = Job {
            sample: Some(SampleSlice {
                spec: SampleSpec::default_spec(),
                index: 1,
            }),
            ..b.clone()
        };
        assert_ne!(s0.hash(), s1.hash(), "window index not hashed");
        // Trace identity axes: content hash and branches-only flag.
        let t = |content, branches_only| Job {
            trace: Some(TraceId {
                content,
                branches_only,
            }),
            ..b.clone()
        };
        assert_ne!(t(1, false).hash(), t(2, false).hash(), "content not hashed");
        assert_ne!(
            t(1, false).hash(),
            t(1, true).hash(),
            "branches-only flag not hashed"
        );
    }

    #[test]
    fn traced_constructor_zeroes_compile_axes() {
        let id = TraceId {
            content: 7,
            branches_only: true,
        };
        let j = Job::traced(
            "cbp-import",
            id,
            SchemeKind::Conventional,
            PredicationModel::Cmov,
            10_000,
            CoreConfig::paper(),
        );
        assert_eq!(j.trace, Some(id));
        assert_eq!(j.benchmark, "cbp-import");
        assert!(!j.ifconv);
        assert_eq!(j.profile_steps, 0);
        assert!(j.canon().contains("trace=0000000000000007 bo:1"));
    }

    #[test]
    fn threshold_encoding_distinguishes_close_values() {
        let a = Job {
            ifconv_threshold: Some(0.15),
            ..base()
        };
        let b = Job {
            ifconv_threshold: Some(0.150000001),
            ..base()
        };
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn hash_hex_matches_hash() {
        let b = base();
        assert_eq!(b.hash_hex(), format!("{:016x}", b.hash()));
    }

    #[test]
    fn label_mentions_scheme_and_flags() {
        let j = Job {
            ifconv: true,
            shadow: true,
            ..base()
        };
        assert_eq!(j.label(), "gzip/predicate/ifconv/shadow");
        let sampled = Job {
            sample: Some(SampleSlice {
                spec: SampleSpec::default_spec(),
                index: 2,
            }),
            ..base()
        };
        assert_eq!(sampled.label(), "gzip/predicate/s2");
    }
}
