//! Timestamp-based resource models.
//!
//! The simulator propagates per-instruction stage timestamps instead of
//! iterating cycle by cycle; these helpers answer "when can this
//! instruction acquire the resource" for bounded structures whose entries
//! release at arbitrary (already-computed) times.
//!
//! Both structures here sit on the per-record hot path (a simulated
//! instruction touches the pools up to a dozen times and issues through a
//! [`UnitSet`] exactly once), so they are flat rings over plain arrays:
//! no hashing, no heap churn, branch-predictable scans. Their observable
//! semantics are bit-exact with the reference `VecDeque`/hash-map
//! formulations they replaced — the grid-fusion acceptance gate
//! (byte-identical reports) depends on that.

/// A structure with `capacity` entries, each held from acquisition until a
/// caller-supplied release cycle (ROB, issue queues, LSQ, physical register
/// free lists).
///
/// Releases are kept sorted ascending in a power-of-two ring: most pools
/// release at the commit cycle, which is monotone, so the common case is
/// an O(1) append / expire — and these pools are touched several times
/// per simulated instruction. Out-of-order releases (issue-queue slots on
/// an early-issuing instruction) take a bounded sorted-insert path.
#[derive(Clone, Debug)]
pub struct Pool {
    /// Outstanding release cycles in ascending order, stored at ring
    /// indices `(head + i) & mask` for `i < len`.
    ring: Box<[u64]>,
    head: usize,
    len: usize,
    mask: usize,
    capacity: usize,
}

impl Pool {
    /// A pool with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pool must have capacity");
        let slots = capacity.next_power_of_two();
        Pool {
            ring: vec![0u64; slots].into_boxed_slice(),
            head: 0,
            len: 0,
            mask: slots - 1,
            capacity,
        }
    }

    #[inline]
    fn get(&self, i: usize) -> u64 {
        self.ring[(self.head + i) & self.mask]
    }

    #[inline]
    fn set(&mut self, i: usize, v: u64) {
        let mask = self.mask;
        self.ring[(self.head + i) & mask] = v;
    }

    #[inline]
    fn pop_front(&mut self) {
        debug_assert!(self.len > 0);
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
    }

    /// Earliest cycle ≥ `now` at which an entry can be acquired, without
    /// acquiring it.
    #[inline]
    pub fn earliest(&mut self, now: u64) -> u64 {
        while self.len >= self.capacity && self.ring[self.head] <= now {
            self.pop_front();
        }
        if self.len < self.capacity {
            now
        } else {
            now.max(self.ring[self.head])
        }
    }

    /// Acquires an entry at (or after) `now`, holding it until `release`.
    /// Returns the acquisition cycle.
    pub fn acquire(&mut self, now: u64, release: u64) -> u64 {
        let at = self.earliest(now);
        if self.len >= self.capacity {
            self.pop_front();
        }
        let r = release.max(at);
        if self.len > 0 && self.get(self.len - 1) > r {
            // Out-of-order release: binary-search the first entry > r,
            // shift the tail right one slot, insert. Bounded by capacity.
            let mut lo = 0usize;
            let mut hi = self.len;
            while lo < hi {
                let mid = (lo + hi) / 2;
                if self.get(mid) <= r {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            let mut i = self.len;
            while i > lo {
                let v = self.get(i - 1);
                self.set(i, v);
                i -= 1;
            }
            self.set(lo, r);
        } else {
            self.set(self.len, r);
        }
        self.len += 1;
        at
    }

    /// Capacity of the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Cycle span a [`UnitSet`] keeps start counts for. Bookings run at most
/// a dependence chain's depth ahead of the issue frontier and queries
/// never fall behind the oldest live booking by more than that, so the
/// live span is far smaller than this window; the set panics loudly
/// (rather than silently mis-counting) if a workload ever exceeds it.
const UNIT_WINDOW: u64 = 1 << 15;

/// A set of identical pipelined functional units: up to `n` operations
/// can start per cycle, tracked as a flat ring of per-cycle start counts
/// so that an operation booked far in the future (a long dependence
/// chain) does not block earlier, actually-free issue slots.
#[derive(Clone, Debug)]
pub struct UnitSet {
    n: u8,
    /// Per-cycle start counts for cycles `[base, base + UNIT_WINDOW)`,
    /// indexed by `cycle & (UNIT_WINDOW - 1)`. Slots outside the live
    /// window are zero by invariant: advancing the window re-zeroes every
    /// slot it vacates.
    booked: Box<[u8]>,
    /// Lowest cycle the window covers.
    base: u64,
}

impl UnitSet {
    /// A set of `n` units.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds 255.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "unit set must have units");
        assert!(n <= u8::MAX as usize, "unit count must fit a byte");
        UnitSet {
            n: n as u8,
            booked: vec![0u8; UNIT_WINDOW as usize].into_boxed_slice(),
            base: 0,
        }
    }

    /// Slides the window forward so cycle `c` is representable, zeroing
    /// the slots the old window vacates. Each slot is cleared once per
    /// window pass, so the cost amortizes to O(1) per cycle advanced.
    #[cold]
    fn advance(&mut self, c: u64) {
        let new_base = c + 1 - UNIT_WINDOW;
        if new_base - self.base >= UNIT_WINDOW {
            self.booked.fill(0);
        } else {
            for cycle in self.base..new_base {
                self.booked[(cycle & (UNIT_WINDOW - 1)) as usize] = 0;
            }
        }
        self.base = new_base;
    }

    /// Issues an operation at the earliest cycle ≥ `ready` with a free
    /// issue slot; returns the actual issue cycle.
    #[inline]
    pub fn issue(&mut self, ready: u64) -> u64 {
        assert!(
            ready >= self.base,
            "unit-set query at cycle {ready} behind window base {}: \
             live booking span exceeded UNIT_WINDOW",
            self.base
        );
        let mut c = ready;
        loop {
            if c >= self.base + UNIT_WINDOW {
                self.advance(c);
            }
            let slot = (c & (UNIT_WINDOW - 1)) as usize;
            if self.booked[slot] < self.n {
                self.booked[slot] += 1;
                return c;
            }
            c += 1;
        }
    }
}

/// A sliding width limiter: at most `width` events per cycle (fetch,
/// rename, commit bandwidth).
#[derive(Clone, Debug)]
pub struct WidthLimiter {
    width: usize,
    cycle: u64,
    used: usize,
}

impl WidthLimiter {
    /// A limiter allowing `width` events per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "width must be positive");
        WidthLimiter {
            width,
            cycle: 0,
            used: 0,
        }
    }

    /// Books one slot at the earliest cycle ≥ `now`; returns that cycle.
    pub fn book(&mut self, now: u64) -> u64 {
        if now > self.cycle {
            self.cycle = now;
            self.used = 0;
        }
        if self.used >= self.width {
            self.cycle += 1;
            self.used = 0;
        }
        self.used += 1;
        self.cycle
    }

    /// Forces the next booking to start no earlier than `cycle` (pipeline
    /// redirect).
    pub fn redirect(&mut self, cycle: u64) {
        if cycle > self.cycle {
            self.cycle = cycle;
            self.used = 0;
        }
    }

    /// Ends the current group: the next booking lands in a later cycle
    /// (taken-branch fetch break).
    pub fn break_group(&mut self) {
        self.used = self.width;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_admits_until_full() {
        let mut p = Pool::new(2);
        assert_eq!(p.acquire(0, 100), 0);
        assert_eq!(p.acquire(0, 50), 0);
        // Full: next acquire waits for the earliest release (50).
        assert_eq!(p.acquire(0, 200), 50);
        // Now occupants release at 100 and 200.
        assert_eq!(p.acquire(60, 300), 100);
    }

    #[test]
    fn pool_earliest_is_idempotent() {
        let mut p = Pool::new(1);
        p.acquire(0, 10);
        assert_eq!(p.earliest(0), 10);
        assert_eq!(p.earliest(0), 10);
        assert_eq!(p.earliest(20), 20, "past releases free the entry");
    }

    #[test]
    fn pool_sorted_insert_keeps_order() {
        // Out-of-order releases (issue-queue pattern): the ring must stay
        // sorted so `earliest` always sees the soonest release.
        let mut p = Pool::new(3);
        p.acquire(0, 90);
        p.acquire(0, 30);
        p.acquire(0, 60);
        // Full; earliest release is 30.
        assert_eq!(p.earliest(0), 30);
        assert_eq!(p.acquire(0, 120), 30);
        assert_eq!(p.earliest(31), 60);
    }

    #[test]
    fn pool_ring_wraps_cleanly() {
        // Far more acquisitions than capacity exercises ring wrap-around
        // with a mix of monotone and out-of-order releases.
        let mut p = Pool::new(3);
        let mut now = 0;
        for i in 0..1000u64 {
            now = p.acquire(now, now + 5 + (i % 3));
        }
        assert!(p.earliest(now) >= now);
    }

    #[test]
    fn unit_set_allows_n_per_cycle() {
        let mut u = UnitSet::new(2);
        assert_eq!(u.issue(5), 5);
        assert_eq!(u.issue(5), 5, "second unit");
        assert_eq!(u.issue(5), 6, "both busy at 5");
    }

    #[test]
    fn future_bookings_do_not_block_earlier_slots() {
        // A long dependence chain books cycles 100, 101, 102...; an
        // independent op that is ready at 10 must still issue at 10.
        let mut u = UnitSet::new(1);
        for t in 100..110 {
            assert_eq!(u.issue(t), t);
        }
        assert_eq!(u.issue(10), 10, "earlier free slot is usable");
        assert_eq!(u.issue(10), 11, "but only once for a single unit");
    }

    #[test]
    fn unit_window_slides_and_forgets_stale_cycles() {
        let mut u = UnitSet::new(1);
        assert_eq!(u.issue(0), 0);
        // Jump far past the window: the slide must zero vacated ring
        // slots, not double-count cycle 0's old booking.
        let far = UNIT_WINDOW * 3 + 7;
        assert_eq!(u.issue(far), far);
        assert_eq!(u.issue(far), far + 1, "unit busy at `far`");
        // The cycle aliasing cycle 0's ring slot inside the new window is
        // free again.
        let aliased = (far + 1 - UNIT_WINDOW).next_multiple_of(UNIT_WINDOW);
        assert_eq!(u.issue(aliased), aliased);
    }

    #[test]
    #[should_panic(expected = "behind window base")]
    fn unit_query_behind_window_panics() {
        let mut u = UnitSet::new(1);
        u.issue(UNIT_WINDOW * 4);
        u.issue(0);
    }

    #[test]
    fn width_limiter_packs_per_cycle() {
        let mut w = WidthLimiter::new(2);
        assert_eq!(w.book(0), 0);
        assert_eq!(w.book(0), 0);
        assert_eq!(w.book(0), 1, "third event spills to the next cycle");
        assert_eq!(w.book(5), 5, "time can jump forward");
    }

    #[test]
    fn width_limiter_redirect_and_break() {
        let mut w = WidthLimiter::new(3);
        w.book(0);
        w.break_group();
        assert_eq!(w.book(0), 1, "group break forces a new cycle");
        w.redirect(10);
        assert_eq!(w.book(0), 10, "redirect pushes fetch forward");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_pool_panics() {
        let _ = Pool::new(0);
    }
}
