//! Timestamp-based resource models.
//!
//! The simulator propagates per-instruction stage timestamps instead of
//! iterating cycle by cycle; these helpers answer "when can this
//! instruction acquire the resource" for bounded structures whose entries
//! release at arbitrary (already-computed) times.

use std::collections::VecDeque;

use crate::fxhash::FxMap;

/// A structure with `capacity` entries, each held from acquisition until a
/// caller-supplied release cycle (ROB, issue queues, LSQ, physical register
/// free lists).
///
/// Releases are kept as a sorted ring buffer rather than a binary heap:
/// most pools release at the commit cycle, which is monotone, so the
/// common case is an O(1) `push_back` / `pop_front` instead of a heap
/// sift — and these pools are touched several times per simulated
/// instruction.
#[derive(Clone, Debug)]
pub struct Pool {
    /// Outstanding release cycles, sorted ascending.
    releases: VecDeque<u64>,
    capacity: usize,
}

impl Pool {
    /// A pool with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pool must have capacity");
        Pool {
            releases: VecDeque::with_capacity(capacity + 1),
            capacity,
        }
    }

    /// Earliest cycle ≥ `now` at which an entry can be acquired, without
    /// acquiring it.
    pub fn earliest(&mut self, now: u64) -> u64 {
        while self.releases.len() >= self.capacity {
            match self.releases.front() {
                Some(&r) if r <= now => {
                    self.releases.pop_front();
                }
                _ => break,
            }
        }
        if self.releases.len() < self.capacity {
            now
        } else {
            let r = *self.releases.front().expect("full pool is non-empty");
            now.max(r)
        }
    }

    /// Acquires an entry at (or after) `now`, holding it until `release`.
    /// Returns the acquisition cycle.
    pub fn acquire(&mut self, now: u64, release: u64) -> u64 {
        let at = self.earliest(now);
        if self.releases.len() >= self.capacity {
            self.releases.pop_front();
        }
        let r = release.max(at);
        match self.releases.back() {
            // Out-of-order release (issue-queue slots on an early-issuing
            // instruction): sorted insert, bounded by the queue capacity.
            Some(&b) if b > r => {
                let i = self.releases.partition_point(|&x| x <= r);
                self.releases.insert(i, r);
            }
            _ => self.releases.push_back(r),
        }
        at
    }

    /// Capacity of the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A set of identical pipelined functional units: up to `n` operations
/// can start per cycle, tracked as per-cycle occupancy so that an
/// operation booked far in the future (a long dependence chain) does not
/// block earlier, actually-free issue slots.
#[derive(Clone, Debug)]
pub struct UnitSet {
    n: u32,
    // Per-cycle start counts. The live window spans from the commit
    // frontier to the furthest dependence-chain booking — O(100k) keys at
    // full commit budgets — so lookups use the fast integer hasher rather
    // than an ordered map.
    booked: FxMap<u64, u32>,
    calls: u64,
}

impl UnitSet {
    /// A set of `n` units.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "unit set must have units");
        UnitSet {
            n: n as u32,
            booked: FxMap::default(),
            calls: 0,
        }
    }

    /// Issues an operation at the earliest cycle ≥ `ready` with a free
    /// issue slot; returns the actual issue cycle.
    pub fn issue(&mut self, ready: u64) -> u64 {
        let mut c = ready;
        while self.booked.get(&c).copied().unwrap_or(0) >= self.n {
            c += 1;
        }
        *self.booked.entry(c).or_insert(0) += 1;
        // Periodically drop bookings far in the past (instructions issue
        // within the in-flight window, so old cycles can never be asked
        // for again).
        self.calls += 1;
        if self.calls.is_multiple_of(4096) {
            let keep_from = c.saturating_sub(100_000);
            self.booked.retain(|&cycle, _| cycle >= keep_from);
        }
        c
    }
}

/// A sliding width limiter: at most `width` events per cycle (fetch,
/// rename, commit bandwidth).
#[derive(Clone, Debug)]
pub struct WidthLimiter {
    width: usize,
    cycle: u64,
    used: usize,
}

impl WidthLimiter {
    /// A limiter allowing `width` events per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "width must be positive");
        WidthLimiter {
            width,
            cycle: 0,
            used: 0,
        }
    }

    /// Books one slot at the earliest cycle ≥ `now`; returns that cycle.
    pub fn book(&mut self, now: u64) -> u64 {
        if now > self.cycle {
            self.cycle = now;
            self.used = 0;
        }
        if self.used >= self.width {
            self.cycle += 1;
            self.used = 0;
        }
        self.used += 1;
        self.cycle
    }

    /// Forces the next booking to start no earlier than `cycle` (pipeline
    /// redirect).
    pub fn redirect(&mut self, cycle: u64) {
        if cycle > self.cycle {
            self.cycle = cycle;
            self.used = 0;
        }
    }

    /// Ends the current group: the next booking lands in a later cycle
    /// (taken-branch fetch break).
    pub fn break_group(&mut self) {
        self.used = self.width;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_admits_until_full() {
        let mut p = Pool::new(2);
        assert_eq!(p.acquire(0, 100), 0);
        assert_eq!(p.acquire(0, 50), 0);
        // Full: next acquire waits for the earliest release (50).
        assert_eq!(p.acquire(0, 200), 50);
        // Now occupants release at 100 and 200.
        assert_eq!(p.acquire(60, 300), 100);
    }

    #[test]
    fn pool_earliest_is_idempotent() {
        let mut p = Pool::new(1);
        p.acquire(0, 10);
        assert_eq!(p.earliest(0), 10);
        assert_eq!(p.earliest(0), 10);
        assert_eq!(p.earliest(20), 20, "past releases free the entry");
    }

    #[test]
    fn unit_set_allows_n_per_cycle() {
        let mut u = UnitSet::new(2);
        assert_eq!(u.issue(5), 5);
        assert_eq!(u.issue(5), 5, "second unit");
        assert_eq!(u.issue(5), 6, "both busy at 5");
    }

    #[test]
    fn future_bookings_do_not_block_earlier_slots() {
        // A long dependence chain books cycles 100, 101, 102...; an
        // independent op that is ready at 10 must still issue at 10.
        let mut u = UnitSet::new(1);
        for t in 100..110 {
            assert_eq!(u.issue(t), t);
        }
        assert_eq!(u.issue(10), 10, "earlier free slot is usable");
        assert_eq!(u.issue(10), 11, "but only once for a single unit");
    }

    #[test]
    fn width_limiter_packs_per_cycle() {
        let mut w = WidthLimiter::new(2);
        assert_eq!(w.book(0), 0);
        assert_eq!(w.book(0), 0);
        assert_eq!(w.book(0), 1, "third event spills to the next cycle");
        assert_eq!(w.book(5), 5, "time can jump forward");
    }

    #[test]
    fn width_limiter_redirect_and_break() {
        let mut w = WidthLimiter::new(3);
        w.book(0);
        w.break_group();
        assert_eq!(w.book(0), 1, "group break forces a new cycle");
        w.redirect(10);
        assert_eq!(w.book(0), 10, "redirect pushes fetch forward");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_pool_panics() {
        let _ = Pool::new(0);
    }
}
