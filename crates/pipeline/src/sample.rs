//! Pinpoint-style interval sampling.
//!
//! A [`SampleSpec`] turns one long timing run into `count` short measured
//! windows spaced `stride` committed instructions apart. Each window is
//! reached cheaply (fast-forwarding the *functional* stream — a restored
//! machine checkpoint or a trace-cursor seek, never the timing model),
//! then simulated through a `warmup` phase that trains the predictors,
//! caches and TLBs without reporting, and finally a `measure` phase whose
//! statistics are kept. Summing the measured windows' raw counters gives
//! the suite-level estimate: aggregate misprediction rate is
//! `Σ mispredicts / Σ cond_branches`, aggregate IPC is
//! `Σ committed / Σ cycles` — each window weighted by the work it did, as
//! SimPoint/Pinpoint weighting does for equal-length intervals.

use std::fmt;

/// The sampled-run schedule: where the measured windows sit in the
/// committed-instruction stream and how long each phase lasts.
///
/// Window `i` occupies committed-instruction positions
/// `[skip + i*stride, skip + i*stride + warmup + measure)`; the first
/// `warmup` instructions of each window train but do not report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleSpec {
    /// Instructions to fast-forward before the first window (cold-start
    /// region the paper-style runs also discard).
    pub skip: u64,
    /// Functional-warmup instructions per window: simulated through the
    /// full timing model so predictors and caches train, but excluded
    /// from the reported statistics.
    pub warmup: u64,
    /// Measured instructions per window.
    pub measure: u64,
    /// Distance between consecutive window starts.
    pub stride: u64,
    /// Number of windows.
    pub count: u32,
}

impl SampleSpec {
    /// The default schedule used by `ppsim suite --sample` without an
    /// explicit spec: one window of 100k measured instructions behind
    /// 100k of warmup, after skipping the unrepresentative first 100k
    /// commits. Chosen empirically with `ppsim bench --sample` at the
    /// default 500k-commit budget: PEP-PA's large local-history tables
    /// need ~100k instructions of training before their miss rate
    /// settles, so at this budget one long-warmup window beats several
    /// short ones (every Figure-6a scheme-average lands within 0.11 pp
    /// of the full run at ~2.2x less timing work). Larger commit budgets
    /// amortize the per-window warmup and favor `count > 1`.
    pub fn default_spec() -> SampleSpec {
        SampleSpec {
            skip: 100_000,
            warmup: 100_000,
            measure: 100_000,
            stride: 200_000,
            count: 1,
        }
    }

    /// Committed-instruction position where window `i` starts (its warmup
    /// phase begins here).
    pub fn window_start(&self, i: u32) -> u64 {
        self.skip + u64::from(i) * self.stride
    }

    /// Committed instructions the *functional* stream must cover: the end
    /// of the last window. A shared trace capture of this length serves
    /// every window.
    pub fn span(&self) -> u64 {
        self.window_start(self.count.saturating_sub(1)) + self.warmup + self.measure
    }

    /// Total instructions the timing model actually simulates
    /// (`count * (warmup + measure)`); the rest of the span is functional
    /// fast-forward.
    pub fn simulated(&self) -> u64 {
        u64::from(self.count) * (self.warmup + self.measure)
    }

    /// Checks the schedule is usable: at least one window, a nonzero
    /// measured phase, and windows that do not overlap.
    pub fn validate(&self) -> Result<(), SampleSpecError> {
        if self.count == 0 {
            return Err(SampleSpecError::ZeroCount);
        }
        if self.measure == 0 {
            return Err(SampleSpecError::ZeroMeasure);
        }
        if self.count > 1 && self.stride < self.warmup + self.measure {
            return Err(SampleSpecError::OverlappingWindows {
                stride: self.stride,
                window: self.warmup + self.measure,
            });
        }
        Ok(())
    }

    /// Parses the CLI form `skip:warmup:measure:stride:count` (the exact
    /// inverse of [`SampleSpec::canon`]) and validates the result.
    pub fn parse(s: &str) -> Result<SampleSpec, SampleSpecError> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 5 {
            return Err(SampleSpecError::Malformed(s.to_string()));
        }
        let num = |p: &str| -> Result<u64, SampleSpecError> {
            p.parse::<u64>()
                .map_err(|_| SampleSpecError::Malformed(s.to_string()))
        };
        let spec = SampleSpec {
            skip: num(parts[0])?,
            warmup: num(parts[1])?,
            measure: num(parts[2])?,
            stride: num(parts[3])?,
            count: u32::try_from(num(parts[4])?)
                .map_err(|_| SampleSpecError::Malformed(s.to_string()))?,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Canonical `skip:warmup:measure:stride:count` rendering, used in
    /// cache keys and report headers.
    pub fn canon(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}",
            self.skip, self.warmup, self.measure, self.stride, self.count
        )
    }
}

/// An unusable [`SampleSpec`], from validation or CLI parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleSpecError {
    /// `count == 0`: no windows to measure.
    ZeroCount,
    /// `measure == 0`: windows would report nothing.
    ZeroMeasure,
    /// Consecutive windows overlap (`stride < warmup + measure`), which
    /// would double-count instructions in the aggregate.
    OverlappingWindows {
        /// The offending stride.
        stride: u64,
        /// Per-window length (`warmup + measure`).
        window: u64,
    },
    /// Not of the `skip:warmup:measure:stride:count` form.
    Malformed(String),
}

impl fmt::Display for SampleSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleSpecError::ZeroCount => write!(f, "sample spec needs count >= 1"),
            SampleSpecError::ZeroMeasure => write!(f, "sample spec needs measure >= 1"),
            SampleSpecError::OverlappingWindows { stride, window } => write!(
                f,
                "sample windows overlap: stride {stride} < warmup+measure {window}"
            ),
            SampleSpecError::Malformed(s) => {
                write!(
                    f,
                    "bad sample spec `{s}` (want skip:warmup:measure:stride:count)"
                )
            }
        }
    }
}

impl std::error::Error for SampleSpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canon_and_parse_round_trip() {
        let spec = SampleSpec::default_spec();
        assert_eq!(spec.canon(), "100000:100000:100000:200000:1");
        assert_eq!(SampleSpec::parse(&spec.canon()).unwrap(), spec);
    }

    #[test]
    fn window_arithmetic() {
        let spec = SampleSpec {
            skip: 100,
            warmup: 10,
            measure: 40,
            stride: 60,
            count: 3,
        };
        assert_eq!(spec.window_start(0), 100);
        assert_eq!(spec.window_start(2), 220);
        assert_eq!(spec.span(), 270);
        assert_eq!(spec.simulated(), 150);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let base = SampleSpec::default_spec();
        assert_eq!(
            SampleSpec { count: 0, ..base }.validate(),
            Err(SampleSpecError::ZeroCount)
        );
        assert_eq!(
            SampleSpec { measure: 0, ..base }.validate(),
            Err(SampleSpecError::ZeroMeasure)
        );
        assert!(matches!(
            SampleSpec {
                stride: 1,
                count: 2,
                ..base
            }
            .validate(),
            Err(SampleSpecError::OverlappingWindows { .. })
        ));
        // A single window never overlaps itself, whatever the stride.
        assert!(SampleSpec {
            stride: 0,
            count: 1,
            ..base
        }
        .validate()
        .is_ok());
        assert!(SampleSpec::parse("1:2:3").is_err());
        assert!(SampleSpec::parse("a:b:c:d:e").is_err());
        assert!(SampleSpec::parse("0:0:0:0:0").is_err());
    }
}
