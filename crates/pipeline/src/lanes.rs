//! Fused lane-parallel execution: N independent timing lanes over one
//! trace decode.
//!
//! Every cell of a scheme × predication sweep replays the *same*
//! committed-path capture; the per-record trace decode and stream walk
//! are pure overhead to repeat per cell. A [`LaneSet`] decodes each
//! record once and steps every lane with it. Each lane is a complete
//! [`Simulator`] — its own predictors, pipeline resources, memory
//! hierarchy, stall ledger and [`crate::SimStats`] — so no timing state
//! is shared between lanes and each lane's report is bit-identical to
//! the solo run of the same cell (the acceptance gate the fused-vs-solo
//! isolation tests pin).
//!
//! Lockstep is structural: the timing model commits exactly one
//! instruction per processed record, so after `k` shared records every
//! lane has committed `k` instructions and per-lane commit budgets
//! reduce to one shared record budget.

use ppsim_isa::{ExecError, ExecRecord, InsnSource, TraceCursor};

use crate::core::{RunResult, Simulator};
use crate::options::{SimOptions, SimOptionsError, TestFault};

/// An instruction source that never yields a record. Fused lanes are
/// driven externally — the [`LaneSet`] owns the one real cursor and
/// pushes each decoded record into every lane — so the lane simulators
/// themselves sit on an empty source.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSource;

impl InsnSource for NullSource {
    fn next_record(&mut self) -> Result<Option<ExecRecord>, ExecError> {
        Ok(None)
    }

    fn ended_halted(&self) -> bool {
        false
    }
}

/// N independent timing lanes sharing one pass over a captured trace.
pub struct LaneSet {
    cursor: TraceCursor,
    lanes: Vec<Simulator<NullSource>>,
    /// Test-only fault: models one physically *shared* global-history
    /// register serving every lane. Each lane reads the register as the
    /// previous lane left it and writes its own update back, so a
    /// branch outcome is shifted in once per lane instead of once —
    /// exactly what naive cross-lane state sharing would do to gshare
    /// history. Deliberately breaks isolation so the differential check
    /// can prove it would notice.
    ghr_leak: bool,
    /// The shared register's current value while the fault is armed.
    shared_ghr: Option<u64>,
}

impl LaneSet {
    /// Builds one lane per options value, all fed from `cursor`.
    ///
    /// Each options value is validated exactly as in
    /// [`SimOptions::build_source`]; the first inconsistent cell aborts
    /// construction. Any cell carrying [`TestFault::ShareGhr`] arms the
    /// deliberate cross-lane history leak (check-harness teeth).
    pub fn new(cursor: TraceCursor, cells: &[SimOptions]) -> Result<Self, SimOptionsError> {
        let mut lanes = cells
            .iter()
            .map(|opts| opts.build_source(NullSource))
            .collect::<Result<Vec<_>, _>>()?;
        // Lanes sit on an empty NullSource, so their construction-time
        // decode tables are empty; install the shared capture's code image
        // so the hot loop decodes from the static side-table, exactly as
        // a solo replay of the same trace would.
        for lane in &mut lanes {
            lane.install_code(cursor.code());
        }
        Ok(LaneSet {
            cursor,
            lanes,
            ghr_leak: cells.iter().any(|c| c.fault == Some(TestFault::ShareGhr)),
            shared_ghr: None,
        })
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the set has no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Enables the deliberate cross-lane global-history leak (see the
    /// `ghr_leak` field). Fault-injection hook for the isolation check;
    /// never set on measurement runs.
    #[doc(hidden)]
    pub fn enable_ghr_leak(&mut self) {
        self.ghr_leak = true;
    }

    /// Records decoded per chunk of [`LaneSet::advance`]. Lanes are
    /// stepped a chunk at a time (not a record at a time) so each lane's
    /// predictor tables and cache state stay hot for the whole chunk
    /// instead of being evicted by its siblings on every record. Chunking
    /// never changes results: every lane still sees the same records in
    /// the same order, and cross-record state lives inside each lane.
    const CHUNK: usize = 256;

    /// Steps every lane through up to `budget` shared records. Returns
    /// `Some(halted)` if the stream ended first, `None` if the budget
    /// was exhausted.
    fn advance(&mut self, budget: u64) -> Option<bool> {
        let mut chunk = Vec::with_capacity(Self::CHUNK.min(budget as usize));
        let mut n = 0;
        while n < budget {
            // Decode once into the chunk buffer ...
            chunk.clear();
            let want = Self::CHUNK.min((budget - n) as usize);
            let mut ended = None;
            while chunk.len() < want {
                match self.cursor.next_record() {
                    Ok(Some(rec)) => chunk.push(rec),
                    Ok(None) => {
                        ended = Some(self.cursor.ended_halted());
                        break;
                    }
                    Err(e) => panic!("trace cursor died: {e}"),
                }
            }
            // ... then run each lane through the whole chunk.
            if self.ghr_leak {
                // The armed fault interleaves lanes per record.
                for rec in &chunk {
                    self.step_shared_ghr(rec);
                }
            } else {
                for lane in &mut self.lanes {
                    for rec in &chunk {
                        lane.step(rec);
                    }
                }
            }
            n += chunk.len() as u64;
            if let Some(halted) = ended {
                return Some(halted);
            }
        }
        None
    }

    /// The armed fault: one shared history register, updated in lane
    /// order (see the `ghr_leak` field).
    #[cold]
    fn step_shared_ghr(&mut self, rec: &ppsim_isa::ExecRecord) {
        let mut shared = self.shared_ghr;
        for lane in &mut self.lanes {
            if let Some(v) = shared {
                lane.set_l1_ghr(v);
            }
            lane.step(rec);
            shared = lane.l1_ghr().or(shared);
        }
        self.shared_ghr = shared;
    }

    /// Runs all lanes until the trace ends or `max_commits` instructions
    /// commit per lane; returns one [`RunResult`] per lane, in lane
    /// order. Mirrors [`Simulator::run`] on every lane.
    pub fn run(&mut self, max_commits: u64) -> Vec<RunResult> {
        let halted = self.advance(max_commits).unwrap_or(false);
        self.lanes
            .iter_mut()
            .map(|lane| lane.finalize(halted))
            .collect()
    }

    /// Per-lane `process()` phase attribution, in lane order (`None` for
    /// lanes built without [`SimOptions::profile_phases`]). See
    /// [`crate::PhaseReport`].
    pub fn phase_reports(&self) -> Vec<Option<crate::PhaseReport>> {
        self.lanes.iter().map(|l| l.phase_report()).collect()
    }

    /// Runs one sampled window on all lanes: `warmup` shared records
    /// with statistics suppressed, then `measure` reported records.
    /// Mirrors [`Simulator::run_sample`] on every lane; the cursor must
    /// already be positioned at the window start.
    pub fn run_sample(&mut self, warmup: u64, measure: u64) -> Vec<RunResult> {
        self.advance(warmup);
        for lane in &mut self.lanes {
            lane.begin_measurement();
        }
        self.run(measure)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ppsim_isa::TraceBuffer;
    use ppsim_predictors::SchemeSpec;

    use super::*;
    use crate::config::PredicationModel;

    /// A small deterministic loop whose inner branch direction follows a
    /// multiplicative-hash bit of the counter — history-correlated but
    /// not trivially predictable, so predictor state actually matters.
    fn program() -> ppsim_isa::Program {
        use ppsim_isa::{AluKind, Asm, CmpRel, CmpType, Gr, Operand, Pr};
        let (i, t, acc) = (Gr::new(1), Gr::new(2), Gr::new(3));
        let mut a = Asm::new();
        let top = a.new_label();
        let skip = a.new_label();
        a.bind(top);
        a.addi(i, i, 1);
        // t = (i * 2654435761) >> 13 & 1: a pseudo-random direction bit.
        a.alu(AluKind::Mul, t, i, Operand::imm(2654435761));
        a.alu(AluKind::Shr, t, t, Operand::imm(13));
        a.alu(AluKind::And, t, t, Operand::imm(1));
        a.cmp(
            CmpType::Unc,
            CmpRel::Eq,
            Pr::new(1),
            Pr::new(2),
            t,
            Operand::imm(0),
        );
        a.cmp(
            CmpType::Unc,
            CmpRel::Lt,
            Pr::new(3),
            Pr::new(4),
            i,
            Operand::imm(900),
        );
        // When the hash bit says skip, the two conditional branches
        // commit back to back — the pattern that exposes history-update
        // interleaving between lanes.
        a.pred(Pr::new(1)).br(skip);
        a.addi(acc, acc, 1);
        a.bind(skip);
        a.pred(Pr::new(3)).br(top);
        a.halt();
        a.assemble().unwrap()
    }

    fn cells() -> Vec<SimOptions> {
        vec![
            SimOptions::new(SchemeSpec::Conventional, PredicationModel::Cmov),
            SimOptions::new(SchemeSpec::PepPa, PredicationModel::Cmov),
            SimOptions::new(SchemeSpec::Predicate, PredicationModel::Selective),
        ]
    }

    #[test]
    fn fused_lanes_match_solo_replay_bit_for_bit() {
        let program = program();
        let trace = Arc::new(TraceBuffer::capture(&program, 10_000).unwrap());
        let fused = LaneSet::new(TraceCursor::new(Arc::clone(&trace)), &cells())
            .unwrap()
            .run(10_000);
        for (opts, fused) in cells().into_iter().zip(fused) {
            let solo = opts
                .build_source(TraceCursor::new(Arc::clone(&trace)))
                .unwrap()
                .run(10_000);
            assert_eq!(solo.halted, fused.halted);
            assert_eq!(solo.stats, fused.stats);
        }
    }

    #[test]
    fn fused_sampled_window_matches_solo_window() {
        let program = program();
        let trace = Arc::new(TraceBuffer::capture(&program, 10_000).unwrap());
        let window = |t: &Arc<TraceBuffer>| TraceCursor::window(Arc::clone(t), 8, 40);
        let fused = LaneSet::new(window(&trace), &cells())
            .unwrap()
            .run_sample(15, 20);
        for (opts, fused) in cells().into_iter().zip(fused) {
            let mut sim = opts.build_source(window(&trace)).unwrap();
            let solo = sim.run_sample(15, 20);
            assert_eq!(solo.stats, fused.stats);
        }
    }

    #[test]
    fn ghr_leak_teeth_breaks_lane_isolation() {
        // The fault hook must actually perturb a lane, otherwise the
        // isolation check it backs proves nothing.
        let program = program();
        let trace = Arc::new(TraceBuffer::capture(&program, 10_000).unwrap());
        // Lane order chosen so lane 0 (predicate scheme: history carries
        // compare-prediction bits) pollutes lane 1 (conventional: its
        // gshare history feeds every fetch-time prediction).
        let cells = vec![
            SimOptions::new(SchemeSpec::Predicate, PredicationModel::Selective),
            SimOptions::new(SchemeSpec::Conventional, PredicationModel::Cmov),
        ];
        let mut leaky = LaneSet::new(TraceCursor::new(Arc::clone(&trace)), &cells).unwrap();
        leaky.enable_ghr_leak();
        let leaked = leaky.run(10_000);
        let solo = cells[1]
            .build_source(TraceCursor::new(Arc::clone(&trace)))
            .unwrap()
            .run(10_000);
        assert_ne!(
            solo.stats, leaked[1].stats,
            "deliberate GHR leak must change the polluted lane's report"
        );
    }

    #[test]
    fn null_source_is_empty() {
        let mut s = NullSource;
        assert!(matches!(s.next_record(), Ok(None)));
        assert!(!s.ended_halted());
        // A simulator over the null source runs zero instructions.
        let r = SimOptions::new(SchemeSpec::Conventional, PredicationModel::Cmov)
            .build_source(NullSource)
            .unwrap()
            .run(100);
        assert_eq!(r.stats.committed, 0);
    }
}
