//! A fast, non-cryptographic hasher for the simulator's hot-path maps.
//!
//! The timing model keys several per-instruction maps by small integers
//! (store addresses, branch slots, issue cycles). `std`'s default SipHash
//! is DoS-resistant but costs more than the table lookup it guards; these
//! keys come from a deterministic simulation, not an adversary, so the
//! classic multiply-xor folding used by rustc ("FxHash") is safe and
//! several times faster. Hand-rolled because the workspace is
//! dependency-free by policy.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Knuth-style odd multiplier; spreads low-entropy integer keys across
/// the high bits, which `HashMap` folds into the bucket index.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox "Fx" construction: rotate, xor, multiply per word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// A `HashMap` using [`FxHasher`] — drop-in for integer-keyed hot maps.
pub type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_integer_keys() {
        let mut m: FxMap<u64, u32> = FxMap::default();
        for k in 0..1000u64 {
            m.insert(k * 8, k as u32);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(&(k * 8)), Some(&(k as u32)));
        }
    }

    #[test]
    fn sequential_keys_do_not_collide_catastrophically() {
        // Aligned addresses differ only in low bits; the multiply must
        // spread them so HashMap's high-bit folding sees distinct values.
        let mut hashes: Vec<u64> = (0..4096u64)
            .map(|k| {
                let mut h = FxHasher::default();
                h.write_u64(k * 8);
                h.finish() >> 48
            })
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert!(
            hashes.len() > 2048,
            "high bits look degenerate: {} distinct of 4096",
            hashes.len()
        );
    }

    #[test]
    fn byte_slices_hash_like_words() {
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}
