//! Static per-slot decode tables for the hot loop.
//!
//! A program (or imported trace) has a small, fixed set of instruction
//! slots, while the timing model processes hundreds of millions of
//! dynamic records. Everything `process()` needs to classify an
//! instruction — latency class, issue-queue and functional-unit class,
//! resource needs, guard index, source/destination registers — is a pure
//! function of the static [`Insn`], so it is computed exactly once per
//! slot at [`Simulator`](crate::Simulator) construction and packed into a
//! 16-byte [`SlotMeta`]. The per-record `Op` enum matches collapse into
//! one indexed load plus bit tests.
//!
//! The classification must agree bit-for-bit with the on-demand [`Insn`]
//! helper methods and the historical `latency_of`/IQ/unit match chains;
//! the property tests at the bottom of this module enumerate every
//! opcode × predication × destination combination and pin that identity.

use ppsim_isa::{AluKind, FpuKind, Insn, Op};

use crate::config::Latencies;

/// Sentinel for "no register" in the packed source/destination fields
/// (all real indices are < 128).
pub const NO_REG: u8 = 0xFF;

/// Latency classes, indexing the per-run table built by
/// [`lat_table`] from [`Latencies`].
pub mod lat {
    /// Simple integer ALU (also loads/stores before memory time, nop,
    /// halt — the historical `latency_of` default arm).
    pub const INT_ALU: u8 = 0;
    /// Integer multiply.
    pub const INT_MUL: u8 = 1;
    /// FP add/sub/convert and FP compare.
    pub const FP_ALU: u8 = 2;
    /// FP multiply.
    pub const FP_MUL: u8 = 3;
    /// FP divide.
    pub const FP_DIV: u8 = 4;
    /// Branch resolution.
    pub const BRANCH: u8 = 5;
    /// Number of classes.
    pub const COUNT: usize = 6;
}

/// Issue-queue classes.
pub mod iq {
    /// Integer issue queue.
    pub const INT: u8 = 0;
    /// Floating-point issue queue.
    pub const FP: u8 = 1;
    /// Branch issue queue.
    pub const BR: u8 = 2;
}

/// Functional-unit classes.
pub mod unit {
    /// Integer ALUs.
    pub const INT: u8 = 0;
    /// FP units.
    pub const FP: u8 = 1;
    /// Memory ports.
    pub const MEM: u8 = 2;
    /// Branch units.
    pub const BR: u8 = 3;
}

/// Classification flag bits (`SlotMeta::flags`).
pub mod flag {
    /// Carries a real (non-`p0`) guard.
    pub const PREDICATED: u16 = 1 << 0;
    /// Integer or floating-point compare.
    pub const CMP: u16 = 1 << 1;
    /// Branch.
    pub const BRANCH: u16 = 1 << 2;
    /// Conditional (guarded) branch.
    pub const COND_BRANCH: u16 = 1 << 3;
    /// Load (integer or float): needs a load-queue entry.
    pub const LOAD: u16 = 1 << 4;
    /// Store (integer or float): needs a store-queue entry.
    pub const STORE: u16 = 1 << 5;
    /// Any memory access.
    pub const MEM: u16 = 1 << 6;
}

/// Packed per-slot classification: everything the per-record hot loop
/// historically recomputed by matching on [`Op`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotMeta {
    /// Classification bits (see [`flag`]).
    pub flags: u16,
    /// Latency class (see [`lat`]).
    pub lat: u8,
    /// Issue-queue class (see [`iq`]).
    pub iq: u8,
    /// Functional-unit class (see [`unit`]).
    pub unit: u8,
    /// Guard (qualifying predicate) register index.
    pub qp: u8,
    /// Integer destination index, [`NO_REG`] if none (writes to `r0`
    /// are architecturally discarded and report as none).
    pub gr_dst: u8,
    /// Float destination index, [`NO_REG`] if none (`f0` discarded).
    pub fr_dst: u8,
    /// Number of real predicate targets written (0–2; `p0` excluded).
    pub pr_dst_count: u8,
    /// First integer source index, [`NO_REG`] if none (reads of `r0`
    /// are included, matching [`Insn::gr_srcs`]).
    pub gr_src0: u8,
    /// Second integer source index, [`NO_REG`] if none.
    pub gr_src1: u8,
    /// First float source index, [`NO_REG`] if none.
    pub fr_src0: u8,
    /// Second float source index, [`NO_REG`] if none.
    pub fr_src1: u8,
}

impl SlotMeta {
    /// Classifies one static instruction.
    pub fn of(insn: &Insn) -> SlotMeta {
        let mut flags = 0u16;
        if insn.is_predicated() {
            flags |= flag::PREDICATED;
        }
        if insn.is_cmp() {
            flags |= flag::CMP;
        }
        if insn.is_branch() {
            flags |= flag::BRANCH;
        }
        if insn.is_cond_branch() {
            flags |= flag::COND_BRANCH;
        }
        if insn.is_load() {
            flags |= flag::LOAD;
        }
        if insn.is_store() {
            flags |= flag::STORE;
        }
        if insn.is_mem() {
            flags |= flag::MEM;
        }
        let lat = match insn.op {
            Op::Alu {
                kind: AluKind::Mul, ..
            } => lat::INT_MUL,
            Op::Fpu {
                kind: FpuKind::Fdiv,
                ..
            } => lat::FP_DIV,
            Op::Fpu {
                kind: FpuKind::Fmul,
                ..
            } => lat::FP_MUL,
            Op::Fpu { .. } | Op::Fcmp { .. } | Op::Itof { .. } | Op::Ftoi { .. } => lat::FP_ALU,
            Op::Br { .. } => lat::BRANCH,
            _ => lat::INT_ALU,
        };
        let iq = match insn.op {
            Op::Br { .. } => iq::BR,
            Op::Fpu { .. } | Op::Fcmp { .. } | Op::Itof { .. } | Op::Ftoi { .. } => iq::FP,
            _ => iq::INT,
        };
        let unit = match insn.op {
            Op::Br { .. } => unit::BR,
            Op::Fpu { .. } | Op::Fcmp { .. } | Op::Itof { .. } | Op::Ftoi { .. } => unit::FP,
            Op::Load { .. } | Op::Store { .. } | Op::Loadf { .. } | Op::Storef { .. } => unit::MEM,
            _ => unit::INT,
        };
        let reg = |r: Option<usize>| r.map_or(NO_REG, |i| i as u8);
        let [gs0, gs1] = insn.gr_srcs();
        let [fs0, fs1] = insn.fr_srcs();
        SlotMeta {
            flags,
            lat,
            iq,
            unit,
            qp: insn.qp.index() as u8,
            gr_dst: reg(insn.gr_dst().map(|r| r.index())),
            fr_dst: reg(insn.fr_dst().map(|r| r.index())),
            pr_dst_count: insn.pr_dsts().iter().flatten().count() as u8,
            gr_src0: reg(gs0.map(|r| r.index())),
            gr_src1: reg(gs1.map(|r| r.index())),
            fr_src0: reg(fs0.map(|r| r.index())),
            fr_src1: reg(fs1.map(|r| r.index())),
        }
    }

    /// Tests one classification bit.
    #[inline]
    pub fn is(&self, bit: u16) -> bool {
        self.flags & bit != 0
    }
}

/// Per-run latency table indexed by [`lat`] class.
pub fn lat_table(l: &Latencies) -> [u64; lat::COUNT] {
    [l.int_alu, l.int_mul, l.fp_alu, l.fp_mul, l.fp_div, l.branch]
}

/// The per-slot side table: one [`SlotMeta`] per static instruction
/// slot, built once per simulator from the source's code image.
#[derive(Clone, Debug, Default)]
pub struct DecodeTable {
    metas: Box<[SlotMeta]>,
}

impl DecodeTable {
    /// Classifies every slot of `code`.
    pub fn new(code: &[Insn]) -> DecodeTable {
        DecodeTable {
            metas: code.iter().map(SlotMeta::of).collect(),
        }
    }

    /// Number of classified slots.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Whether the table is empty (a source without a code image).
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// The classification for `slot`: the precomputed entry when the
    /// slot is covered, an on-demand classification of `insn` otherwise
    /// (sources without a static image). Record streams guarantee
    /// `insn == code[slot]` whenever a code image exists, so both arms
    /// return the same value.
    #[inline]
    pub fn meta(&self, slot: u32, insn: &Insn) -> SlotMeta {
        match self.metas.get(slot as usize) {
            Some(m) => *m,
            None => SlotMeta::of(insn),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim_isa::{CmpRel, CmpType, Fr, Gr, Operand, Pr};

    /// The historical `Simulator::latency_of` match, kept verbatim as
    /// the reference the packed class must reproduce.
    fn reference_latency(insn: &Insn, l: &Latencies) -> u64 {
        match insn.op {
            Op::Alu {
                kind: AluKind::Mul, ..
            } => l.int_mul,
            Op::Alu { .. } | Op::Movi { .. } | Op::Cmp { .. } => l.int_alu,
            Op::Fpu {
                kind: FpuKind::Fdiv,
                ..
            } => l.fp_div,
            Op::Fpu {
                kind: FpuKind::Fmul,
                ..
            } => l.fp_mul,
            Op::Fpu { .. } | Op::Fcmp { .. } | Op::Itof { .. } | Op::Ftoi { .. } => l.fp_alu,
            Op::Br { .. } => l.branch,
            _ => l.int_alu,
        }
    }

    /// The historical rename/acquire issue-queue selection.
    fn reference_iq(insn: &Insn) -> u8 {
        match insn.op {
            Op::Br { .. } => iq::BR,
            Op::Fpu { .. } | Op::Fcmp { .. } | Op::Itof { .. } | Op::Ftoi { .. } => iq::FP,
            _ => iq::INT,
        }
    }

    /// The historical functional-unit selection.
    fn reference_unit(insn: &Insn) -> u8 {
        match insn.op {
            Op::Br { .. } => unit::BR,
            Op::Fpu { .. } | Op::Fcmp { .. } | Op::Itof { .. } | Op::Ftoi { .. } => unit::FP,
            Op::Load { .. } | Op::Store { .. } | Op::Loadf { .. } | Op::Storef { .. } => unit::MEM,
            _ => unit::INT,
        }
    }

    /// Every opcode shape × every destination choice (including the
    /// discarded `r0`/`f0`/`p0` sentinels) × register/immediate operands.
    fn all_ops() -> Vec<Op> {
        let mut ops = Vec::new();
        let grs = [Gr::new(0), Gr::new(7), Gr::new(127)];
        let frs = [Fr::new(0), Fr::new(3), Fr::new(127)];
        let prs = [Pr::new(0), Pr::new(2), Pr::new(63)];
        let operands = [Operand::reg(Gr::new(9)), Operand::imm(-5)];
        for kind in [
            AluKind::Add,
            AluKind::Sub,
            AluKind::And,
            AluKind::Or,
            AluKind::Xor,
            AluKind::Shl,
            AluKind::Shr,
            AluKind::Mul,
        ] {
            for dst in grs {
                for src2 in operands {
                    ops.push(Op::Alu {
                        kind,
                        dst,
                        src1: Gr::new(1),
                        src2,
                    });
                }
            }
        }
        for dst in grs {
            ops.push(Op::Movi { dst, imm: 42 });
        }
        for ctype in [CmpType::None, CmpType::Unc, CmpType::And, CmpType::Or] {
            for rel in [CmpRel::Eq, CmpRel::Lt] {
                for pt in prs {
                    for pf in prs {
                        for src2 in operands {
                            ops.push(Op::Cmp {
                                ctype,
                                rel,
                                pt,
                                pf,
                                src1: Gr::new(4),
                                src2,
                            });
                        }
                        ops.push(Op::Fcmp {
                            ctype,
                            rel,
                            pt,
                            pf,
                            src1: Fr::new(1),
                            src2: Fr::new(2),
                        });
                    }
                }
            }
        }
        for kind in [FpuKind::Fadd, FpuKind::Fsub, FpuKind::Fmul, FpuKind::Fdiv] {
            for dst in frs {
                ops.push(Op::Fpu {
                    kind,
                    dst,
                    src1: Fr::new(1),
                    src2: Fr::new(2),
                });
            }
        }
        for dst in frs {
            ops.push(Op::Itof {
                dst,
                src: Gr::new(5),
            });
        }
        for dst in grs {
            ops.push(Op::Ftoi {
                dst,
                src: Fr::new(5),
            });
        }
        for dst in grs {
            ops.push(Op::Load {
                dst,
                base: Gr::new(2),
                offset: 8,
            });
            ops.push(Op::Store {
                src: dst,
                base: Gr::new(2),
                offset: -8,
            });
        }
        for dst in frs {
            ops.push(Op::Loadf {
                dst,
                base: Gr::new(2),
                offset: 0,
            });
            ops.push(Op::Storef {
                src: dst,
                base: Gr::new(2),
                offset: 16,
            });
        }
        ops.push(Op::Br { target: 3 });
        ops.push(Op::Nop);
        ops.push(Op::Halt);
        ops
    }

    /// Every op under every predication choice.
    fn all_insns() -> Vec<Insn> {
        let mut insns = Vec::new();
        for op in all_ops() {
            for qp in [Pr::new(0), Pr::new(1), Pr::new(63)] {
                insns.push(Insn::guarded(qp, op));
            }
        }
        insns
    }

    #[test]
    fn slot_meta_matches_on_demand_classification_for_every_insn() {
        let lats = Latencies {
            int_alu: 1,
            int_mul: 3,
            fp_alu: 4,
            fp_mul: 5,
            fp_div: 16,
            branch: 2,
        };
        let table = lat_table(&lats);
        let insns = all_insns();
        assert!(insns.len() > 500, "enumeration shrank: {}", insns.len());
        for insn in &insns {
            let m = SlotMeta::of(insn);
            assert_eq!(m.is(flag::PREDICATED), insn.is_predicated(), "{insn}");
            assert_eq!(m.is(flag::CMP), insn.is_cmp(), "{insn}");
            assert_eq!(m.is(flag::BRANCH), insn.is_branch(), "{insn}");
            assert_eq!(m.is(flag::COND_BRANCH), insn.is_cond_branch(), "{insn}");
            assert_eq!(m.is(flag::LOAD), insn.is_load(), "{insn}");
            assert_eq!(m.is(flag::STORE), insn.is_store(), "{insn}");
            assert_eq!(m.is(flag::MEM), insn.is_mem(), "{insn}");
            assert_eq!(m.qp as usize, insn.qp.index(), "{insn}");
            assert_eq!(
                table[m.lat as usize],
                reference_latency(insn, &lats),
                "{insn}"
            );
            assert_eq!(m.iq, reference_iq(insn), "{insn}");
            assert_eq!(m.unit, reference_unit(insn), "{insn}");
            let dst = |d: Option<usize>| d.map_or(NO_REG, |i| i as u8);
            assert_eq!(m.gr_dst, dst(insn.gr_dst().map(|r| r.index())), "{insn}");
            assert_eq!(m.fr_dst, dst(insn.fr_dst().map(|r| r.index())), "{insn}");
            assert_eq!(
                m.pr_dst_count as usize,
                insn.pr_dsts().iter().flatten().count(),
                "{insn}"
            );
            let [gs0, gs1] = insn.gr_srcs();
            assert_eq!(m.gr_src0, dst(gs0.map(|r| r.index())), "{insn}");
            assert_eq!(m.gr_src1, dst(gs1.map(|r| r.index())), "{insn}");
            let [fs0, fs1] = insn.fr_srcs();
            assert_eq!(m.fr_src0, dst(fs0.map(|r| r.index())), "{insn}");
            assert_eq!(m.fr_src1, dst(fs1.map(|r| r.index())), "{insn}");
        }
    }

    #[test]
    fn slot_meta_stays_small() {
        // The table is read once per dynamic record; keep it at four or
        // more slots per cache line.
        assert!(std::mem::size_of::<SlotMeta>() <= 16);
    }

    #[test]
    fn table_lookup_matches_fallback() {
        let insns = all_insns();
        let table = DecodeTable::new(&insns);
        assert_eq!(table.len(), insns.len());
        for (slot, insn) in insns.iter().enumerate() {
            assert_eq!(table.meta(slot as u32, insn), SlotMeta::of(insn));
        }
        // Out-of-range slots classify on demand.
        let empty = DecodeTable::default();
        assert!(empty.is_empty());
        assert_eq!(empty.meta(7, &insns[0]), SlotMeta::of(&insns[0]));
    }
}
