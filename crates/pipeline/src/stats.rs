//! Simulation statistics.

use ppsim_mem::HierarchyStats;
use ppsim_obs::{MetricSet, PcEntry, PcHistogram, StallBreakdown};

/// Counters collected by one simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total cycles (cycle of the last commit).
    pub cycles: u64,
    /// Committed instructions (including nullified ones, as in the paper's
    /// "100 million committed instructions").
    pub committed: u64,
    /// Committed-path fetch events, counting flush-refetches of squashed
    /// consumers twice (wrong-path fetch is not modelled). Invariant:
    /// `fetched >= renamed >= committed`.
    pub fetched: u64,
    /// Committed-path rename events, counting flush-replays twice.
    pub renamed: u64,
    /// Early-resolved branches whose used direction disagreed with the
    /// outcome. §3.2 makes early resolution always correct, so the
    /// differential check oracle pins this at zero; it can only move on a
    /// pipeline bug or an injected `TestFault`.
    pub early_resolved_mispredicts: u64,
    /// Committed *conditional* branches (the prediction-rate denominator).
    pub cond_branches: u64,
    /// Mispredicted conditional branches (used prediction ≠ outcome).
    pub mispredicts: u64,
    /// Committed unconditional branches.
    pub uncond_branches: u64,
    /// Committed compare instructions.
    pub compares: u64,
    /// Branches that consumed an already-computed predicate at rename
    /// (early-resolved; predicate schemes only).
    pub early_resolved: u64,
    /// Early-resolved branches on which the *shadow conventional predictor*
    /// would have mispredicted (Figure 6b attribution).
    pub early_resolved_saves: u64,
    /// Branches where the shadow conventional predictor was wrong.
    pub shadow_mispredicts: u64,
    /// Second-level/PPRF prediction overrode the first-level direction at
    /// rename (front-end re-steer events).
    pub overrides: u64,
    /// Predicate predictions generated (predicate schemes).
    pub predicate_predictions: u64,
    /// Predicate predictions that were wrong (whether or not consumed).
    pub predicate_mispredictions: u64,
    /// Predicated instructions cancelled at rename (selective model,
    /// confident-false).
    pub cancelled_at_rename: u64,
    /// Predicated instructions unguarded at rename (selective model,
    /// confident-true).
    pub unguarded_at_rename: u64,
    /// Flushes triggered by wrong predicate speculation on if-converted
    /// instructions.
    pub predication_flushes: u64,
    /// Instructions committed with a false guard (nullified).
    pub nullified: u64,
    /// Per-stage stall attribution: every cycle charged to exactly one
    /// bucket, so `stall.total() == cycles` holds by construction.
    pub stall: StallBreakdown,
    /// Per-static-branch rows `(slot, executions, mispredictions)`, sorted
    /// by slot for deterministic export.
    pub branch_pcs: Vec<(u32, u64, u64)>,
    /// Memory-hierarchy counters.
    pub mem: HierarchyStats,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Conditional-branch misprediction rate (Figures 5/6 y-axis).
    pub fn misprediction_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.cond_branches as f64
        }
    }

    /// Prediction accuracy = 1 − misprediction rate.
    pub fn accuracy(&self) -> f64 {
        1.0 - self.misprediction_rate()
    }

    /// Fraction of conditional branches resolved early.
    pub fn early_resolved_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.early_resolved as f64 / self.cond_branches as f64
        }
    }

    /// Predicate-prediction misprediction rate.
    pub fn predicate_misprediction_rate(&self) -> f64 {
        if self.predicate_predictions == 0 {
            0.0
        } else {
            self.predicate_mispredictions as f64 / self.predicate_predictions as f64
        }
    }

    /// Mispredictions per kilo-instruction — the cross-workload metric
    /// modern branch-prediction work reports ("Branch Prediction Is Not
    /// a Solved Problem"). Unlike the misprediction *rate*, MPKI also
    /// reflects how branch-dense the workload is.
    pub fn mpki(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.mispredicts as f64 * 1000.0 / self.committed as f64
        }
    }

    /// The `n` static branches contributing the most mispredictions
    /// (hard-to-predict, "H2P", sites), as `(slot, execs, mispredicts)`
    /// rows ordered by mispredictions descending, slot ascending on
    /// ties — deterministic for report pinning. Branches with zero
    /// mispredictions are omitted.
    pub fn top_mispredictors(&self, n: usize) -> Vec<(u32, u64, u64)> {
        let mut rows: Vec<(u32, u64, u64)> = self
            .branch_pcs
            .iter()
            .copied()
            .filter(|&(_, _, miss)| miss > 0)
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Folds another run's counters into `self` — the sampled-simulation
    /// aggregate. Summing raw counters before deriving rates weights each
    /// measured window by the work it did: aggregate misprediction rate is
    /// `Σ mispredicts / Σ cond_branches`, aggregate IPC is
    /// `Σ committed / Σ cycles`. Per-branch histograms merge by slot and
    /// stay sorted; per-window `stall.total() == cycles` invariants sum
    /// into the same invariant on the aggregate.
    pub fn merge(&mut self, other: &SimStats) {
        self.cycles += other.cycles;
        self.committed += other.committed;
        self.fetched += other.fetched;
        self.renamed += other.renamed;
        self.early_resolved_mispredicts += other.early_resolved_mispredicts;
        self.cond_branches += other.cond_branches;
        self.mispredicts += other.mispredicts;
        self.uncond_branches += other.uncond_branches;
        self.compares += other.compares;
        self.early_resolved += other.early_resolved;
        self.early_resolved_saves += other.early_resolved_saves;
        self.shadow_mispredicts += other.shadow_mispredicts;
        self.overrides += other.overrides;
        self.predicate_predictions += other.predicate_predictions;
        self.predicate_mispredictions += other.predicate_mispredictions;
        self.cancelled_at_rename += other.cancelled_at_rename;
        self.unguarded_at_rename += other.unguarded_at_rename;
        self.predication_flushes += other.predication_flushes;
        self.nullified += other.nullified;
        for (bucket, cycles) in other.stall.iter() {
            self.stall.charge(bucket, cycles);
        }
        for &(slot, execs, miss) in &other.branch_pcs {
            match self.branch_pcs.binary_search_by_key(&slot, |r| r.0) {
                Ok(i) => {
                    self.branch_pcs[i].1 += execs;
                    self.branch_pcs[i].2 += miss;
                }
                Err(i) => self.branch_pcs.insert(i, (slot, execs, miss)),
            }
        }
        self.mem.accumulate(&other.mem);
    }

    /// Exports every counter, derived rate, stall bucket and the per-PC
    /// branch histogram onto one typed registry with stable names — the
    /// canonical metric block carried by reports and `--json` artifacts.
    pub fn metrics(&self) -> MetricSet {
        let mut m = MetricSet::new();
        m.counter("cycles", self.cycles);
        m.counter("committed", self.committed);
        m.counter("fetched", self.fetched);
        m.counter("renamed", self.renamed);
        m.counter("cond_branches", self.cond_branches);
        m.counter("mispredicts", self.mispredicts);
        m.counter("uncond_branches", self.uncond_branches);
        m.counter("compares", self.compares);
        m.counter("early_resolved", self.early_resolved);
        m.counter("early_resolved_saves", self.early_resolved_saves);
        m.counter(
            "early_resolved_mispredicts",
            self.early_resolved_mispredicts,
        );
        m.counter("shadow_mispredicts", self.shadow_mispredicts);
        m.counter("overrides", self.overrides);
        m.counter("predicate_predictions", self.predicate_predictions);
        m.counter("predicate_mispredictions", self.predicate_mispredictions);
        m.counter("cancelled_at_rename", self.cancelled_at_rename);
        m.counter("unguarded_at_rename", self.unguarded_at_rename);
        m.counter("predication_flushes", self.predication_flushes);
        m.counter("nullified", self.nullified);
        m.ratio("ipc", self.committed, self.cycles);
        m.ratio("misprediction_rate", self.mispredicts, self.cond_branches);
        m.ratio(
            "mpki",
            self.mispredicts.saturating_mul(1000),
            self.committed,
        );
        m.ratio(
            "early_resolved_rate",
            self.early_resolved,
            self.cond_branches,
        );
        m.ratio(
            "predicate_misprediction_rate",
            self.predicate_mispredictions,
            self.predicate_predictions,
        );
        self.stall.register(&mut m, "stall");
        m.histogram(
            "branch_sites",
            PcHistogram::from_rows(
                self.branch_pcs
                    .iter()
                    .map(|&(slot, execs, events)| PcEntry {
                        pc: slot as u64,
                        execs,
                        events,
                    })
                    .collect(),
            ),
        );
        m.absorb("mem", &self.mem.metrics());
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = SimStats {
            cycles: 100,
            committed: 250,
            cond_branches: 50,
            mispredicts: 5,
            early_resolved: 10,
            predicate_predictions: 40,
            predicate_mispredictions: 4,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.misprediction_rate() - 0.1).abs() < 1e-12);
        assert!((s.accuracy() - 0.9).abs() < 1e-12);
        assert!((s.early_resolved_rate() - 0.2).abs() < 1e-12);
        assert!((s.predicate_misprediction_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn metrics_cover_counters_stalls_and_sites() {
        use ppsim_obs::StallBucket;
        let mut s = SimStats {
            cycles: 100,
            committed: 250,
            cond_branches: 50,
            mispredicts: 5,
            ..SimStats::default()
        };
        s.stall.charge(StallBucket::CommitBound, 100);
        s.branch_pcs = vec![(4, 10, 1), (9, 5, 0)];
        let m = s.metrics();
        assert_eq!(m.counter_value("cycles"), Some(100));
        assert_eq!(m.counter_value("stall.commit_bound"), Some(100));
        assert_eq!(m.get("ipc").unwrap().value(), 2.5);
        assert_eq!(m.histogram_for("branch_sites").unwrap().len(), 2);
        assert_eq!(m.counter_value("mem.l1d.accesses"), Some(0));
    }

    #[test]
    fn merge_sums_counters_and_keeps_histograms_sorted() {
        use ppsim_obs::StallBucket;
        let mut a = SimStats {
            cycles: 100,
            committed: 250,
            cond_branches: 50,
            mispredicts: 5,
            branch_pcs: vec![(2, 10, 1), (7, 4, 0)],
            ..SimStats::default()
        };
        a.stall.charge(StallBucket::CommitBound, 100);
        a.mem.l1d.accesses = 30;
        let mut b = SimStats {
            cycles: 40,
            committed: 80,
            cond_branches: 20,
            mispredicts: 4,
            branch_pcs: vec![(1, 3, 2), (7, 6, 1)],
            ..SimStats::default()
        };
        b.stall.charge(StallBucket::IssueWait, 40);
        b.mem.l1d.accesses = 10;
        a.merge(&b);
        assert_eq!(a.cycles, 140);
        assert_eq!(a.committed, 330);
        assert!((a.misprediction_rate() - 9.0 / 70.0).abs() < 1e-12);
        assert_eq!(a.stall.total(), a.cycles, "invariant survives merging");
        assert_eq!(a.branch_pcs, vec![(1, 3, 2), (2, 10, 1), (7, 10, 1)]);
        assert_eq!(a.mem.l1d.accesses, 40);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.misprediction_rate(), 0.0);
        assert_eq!(s.early_resolved_rate(), 0.0);
        assert_eq!(s.predicate_misprediction_rate(), 0.0);
        assert_eq!(s.mpki(), 0.0);
        assert!(s.top_mispredictors(5).is_empty());
    }

    #[test]
    fn mpki_counts_per_kilo_instruction() {
        let s = SimStats {
            committed: 250_000,
            mispredicts: 1_250,
            ..SimStats::default()
        };
        assert!((s.mpki() - 5.0).abs() < 1e-12);
        let m = s.metrics();
        assert_eq!(m.get("mpki").unwrap().value(), 5.0);
    }

    #[test]
    fn top_mispredictors_orders_by_misses_then_slot() {
        let s = SimStats {
            branch_pcs: vec![(3, 100, 7), (5, 50, 0), (9, 40, 12), (11, 60, 7)],
            ..SimStats::default()
        };
        // Zero-miss sites drop out; ties break toward the lower slot.
        assert_eq!(
            s.top_mispredictors(10),
            vec![(9, 40, 12), (3, 100, 7), (11, 60, 7)]
        );
        assert_eq!(s.top_mispredictors(1), vec![(9, 40, 12)]);
    }
}
