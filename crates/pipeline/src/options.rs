//! Typed, validated simulator construction.
//!
//! [`SimOptions`] replaces the old `Simulator::with_*` method chain: every
//! knob is set on the builder and checked once at
//! [`SimOptions::build_source`], so an inapplicable override (a perceptron
//! geometry on a PEP-PA job, say) is a loud [`SimOptionsError`] instead of
//! a silently ignored call. The source passed to `build_source` selects
//! the execution mode — an inline [`Machine`] or a replaying
//! [`ppsim_isa::TraceCursor`] — through one constructor, so every caller
//! (CLI, serve, check, bench) shares a single build path.

use std::fmt;

use ppsim_isa::{InsnSource, Machine, Program};
use ppsim_predictors::{PerceptronConfig, PredicateConfig, SchemeSpec};

use crate::config::{CoreConfig, PredicationModel};
use crate::core::Simulator;

/// Builder for a [`Simulator`]: scheme, predication model, machine
/// configuration and the optional instrumentation/override knobs.
///
/// ```
/// use ppsim_pipeline::{PredicationModel, SchemeSpec, SimOptions};
/// # use ppsim_isa::{Asm, Machine};
/// # let mut a = Asm::new();
/// # a.halt();
/// # let program = a.assemble().unwrap();
/// let mut sim = SimOptions::new(SchemeSpec::Predicate, PredicationModel::Selective)
///     .trace_events(256)
///     .build_source(Machine::new(&program))
///     .unwrap();
/// let result = sim.run(10_000);
/// assert!(result.halted);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    pub(crate) scheme: SchemeSpec,
    pub(crate) predication: PredicationModel,
    pub(crate) core: CoreConfig,
    pub(crate) shadow: bool,
    pub(crate) trace_events: usize,
    pub(crate) perceptron: Option<PerceptronConfig>,
    pub(crate) predicate: Option<PredicateConfig>,
    pub(crate) oracle_final: bool,
    pub(crate) fault: Option<TestFault>,
    pub(crate) profile_phases: bool,
}

/// A deliberate, test-only predictor fault.
///
/// The differential check harness (`ppsim-check`) injects one of these to
/// prove its oracle actually catches a broken predictor: each variant
/// violates exactly one invariant the oracle pins. Never set on
/// measurement runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestFault {
    /// Inverts the oracle-exact final direction under
    /// [`SimOptions::oracle_final`], breaking the "oracle predictor ⇒
    /// zero mispredict flushes" invariant. Inert on other schemes/modes.
    InvertOracle,
    /// Inverts the computed guard consumed by early-resolved branches
    /// (predicate schemes), breaking the §3.2 "early-resolved branches
    /// never mispredict" invariant. Inert on non-predicate schemes.
    InvertEarlyResolve,
    /// Makes every lane of a fused [`crate::LaneSet`] read and write one
    /// physically *shared* first-level global-history register, updated
    /// in lane order — each branch outcome is shifted in once per lane
    /// instead of once — breaking the "fused lanes are bit-identical to
    /// solo runs" invariant. Inert on solo (non-fused) simulators.
    ShareGhr,
}

impl SimOptions {
    /// Options for `scheme` under `predication`, on the paper's Table-1
    /// machine, with no instrumentation.
    pub fn new(scheme: SchemeSpec, predication: PredicationModel) -> Self {
        SimOptions {
            scheme,
            predication,
            core: CoreConfig::paper(),
            shadow: false,
            trace_events: 0,
            perceptron: None,
            predicate: None,
            oracle_final: false,
            fault: None,
            profile_phases: false,
        }
    }

    /// Replaces the machine configuration (default: [`CoreConfig::paper`]).
    pub fn core(mut self, core: CoreConfig) -> Self {
        self.core = core;
        self
    }

    /// Enables the shadow conventional predictor used to attribute gains
    /// between early resolution and correlation (Figure 6b).
    pub fn shadow(mut self, on: bool) -> Self {
        self.shadow = on;
        self
    }

    /// Records the last `capacity` pipeline events in a ring buffer
    /// (`0` disables tracing; see [`ppsim_obs::EventRing`]).
    pub fn trace_events(mut self, capacity: usize) -> Self {
        self.trace_events = capacity;
        self
    }

    /// Attributes `process()` wall time to pipeline sections (fetch,
    /// rename, predict, execute, commit), read back with
    /// [`Simulator::phase_report`]. The instrumentation is monomorphized
    /// out when off, so simulated results are bit-identical either way;
    /// only host-time measurement is affected.
    pub fn profile_phases(mut self, on: bool) -> Self {
        self.profile_phases = on;
        self
    }

    /// Overrides the second-level conventional predictor's geometry.
    /// Only valid for schemes with
    /// [`SchemeSpec::has_override_perceptron`]; rejected at `build()`.
    pub fn perceptron(mut self, cfg: PerceptronConfig) -> Self {
        self.perceptron = Some(cfg);
        self
    }

    /// Overrides the predicate predictor's geometry. Only valid for
    /// schemes with [`SchemeSpec::has_predicate_predictor`] (the
    /// TAGE-indexed variant maps it onto its own geometry); rejected at
    /// `build()`.
    pub fn predicate(mut self, cfg: PredicateConfig) -> Self {
        self.predicate = Some(cfg);
        self
    }

    /// Check-harness mode: the ideal-conventional scheme's final direction
    /// prediction comes straight from the oracle outcome instead of the
    /// perfect-history perceptron, making "zero mispredict flushes" an
    /// exact invariant the differential oracle can pin. Only valid for
    /// [`SchemeSpec::IdealConventional`]; rejected at `build()`.
    pub fn oracle_final(mut self, on: bool) -> Self {
        self.oracle_final = on;
        self
    }

    /// Injects a deliberate predictor fault (see [`TestFault`]). Used by
    /// the check harness to validate that the oracle detects a broken
    /// predictor; never set on measurement runs.
    pub fn test_fault(mut self, fault: TestFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Checks option consistency without building.
    ///
    /// Overrides are gated on the scheme's *capability predicates*
    /// ([`SchemeSpec::has_override_perceptron`],
    /// [`SchemeSpec::has_predicate_predictor`],
    /// [`SchemeSpec::supports_oracle_final`]) rather than scheme equality,
    /// so a new scheme that grows a second-level or predicate predictor
    /// gets its overrides accepted by declaring the capability — no
    /// validation edit needed (and no silently wrong rejection).
    pub fn validate(&self) -> Result<(), SimOptionsError> {
        if self.perceptron.is_some() && !self.scheme.has_override_perceptron() {
            return Err(SimOptionsError::PerceptronOverride {
                scheme: self.scheme,
            });
        }
        if self.predicate.is_some() && !self.scheme.has_predicate_predictor() {
            return Err(SimOptionsError::PredicateOverride {
                scheme: self.scheme,
            });
        }
        if self.oracle_final && !self.scheme.supports_oracle_final() {
            return Err(SimOptionsError::OracleFinal {
                scheme: self.scheme,
            });
        }
        Ok(())
    }

    /// Validates the options and builds the timing model around any
    /// instruction source: an inline [`Machine`] (execution-driven mode —
    /// fresh, or restored from a [`ppsim_isa::Checkpoint`] so a sampled
    /// run starts at its window position), or a
    /// [`ppsim_isa::TraceCursor`] replaying a shared capture (whole
    /// stream via `TraceCursor::new`, one sampled window via
    /// `TraceCursor::window`).
    ///
    /// This is the single constructor behind every execution mode; the
    /// source value *is* the mode. A capture shorter than the run's
    /// commit budget ends the run early with `halted == false` (see
    /// [`ppsim_isa::TraceBuffer::capture`]); trace windows past the
    /// capture's end clamp to empty.
    ///
    /// # Errors
    ///
    /// The [`SimOptionsError`] consistency checks of
    /// [`SimOptions::validate`].
    pub fn build_source<S: InsnSource>(self, source: S) -> Result<Simulator<S>, SimOptionsError> {
        self.validate()?;
        Ok(Simulator::from_source(source, self))
    }

    /// Validates the options and builds the simulator for `program`.
    #[deprecated(
        since = "0.1.0",
        note = "use `build_source(Machine::new(program))`; every execution \
                mode now goes through the one source-parameterized constructor"
    )]
    pub fn build(self, program: &Program) -> Result<Simulator, SimOptionsError> {
        self.build_source(Machine::new(program))
    }
}

/// An inconsistent [`SimOptions`] combination, reported by
/// [`SimOptions::build`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimOptionsError {
    /// A perceptron geometry override was supplied for a scheme without a
    /// second-level perceptron.
    PerceptronOverride {
        /// The offending scheme.
        scheme: SchemeSpec,
    },
    /// A predicate-predictor geometry override was supplied for a scheme
    /// without a realistic predicate predictor.
    PredicateOverride {
        /// The offending scheme.
        scheme: SchemeSpec,
    },
    /// Oracle-exact final prediction was requested for a scheme other than
    /// the ideal-conventional one.
    OracleFinal {
        /// The offending scheme.
        scheme: SchemeSpec,
    },
}

impl fmt::Display for SimOptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimOptionsError::PerceptronOverride { scheme } => write!(
                f,
                "perceptron geometry override requires a scheme with a \
                 second-level perceptron (conventional), not `{}`",
                scheme.name()
            ),
            SimOptionsError::PredicateOverride { scheme } => write!(
                f,
                "predicate predictor override requires a scheme with a \
                 configurable predicate predictor (predicate, tage-predicate), not `{}`",
                scheme.name()
            ),
            SimOptionsError::OracleFinal { scheme } => write!(
                f,
                "oracle-exact final prediction only applies to the ideal-conventional scheme, not `{}`",
                scheme.name()
            ),
        }
    }
}

impl std::error::Error for SimOptionsError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim_isa::Asm;

    fn halt_program() -> Program {
        let mut a = Asm::new();
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn plain_options_build() {
        for scheme in SchemeSpec::ALL {
            let sim = SimOptions::new(scheme, PredicationModel::Cmov)
                .build_source(Machine::new(&halt_program()));
            assert!(sim.is_ok(), "{scheme:?}");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_build_shim_matches_build_source() {
        let program = halt_program();
        let a = SimOptions::new(SchemeSpec::Predicate, PredicationModel::Selective)
            .build(&program)
            .unwrap()
            .run(100);
        let b = SimOptions::new(SchemeSpec::Predicate, PredicationModel::Selective)
            .build_source(Machine::new(&program))
            .unwrap()
            .run(100);
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.halted, b.halted);
    }

    #[test]
    fn inapplicable_overrides_are_rejected() {
        let err = SimOptions::new(SchemeSpec::PepPa, PredicationModel::Cmov)
            .perceptron(PerceptronConfig::paper_148kb())
            .validate()
            .unwrap_err();
        assert!(matches!(err, SimOptionsError::PerceptronOverride { .. }));
        assert!(err.to_string().contains("pep-pa"), "{err}");
        assert!(SimOptions::new(SchemeSpec::PepPa, PredicationModel::Cmov)
            .perceptron(PerceptronConfig::paper_148kb())
            .build_source(Machine::new(&halt_program()))
            .is_err());

        let err = SimOptions::new(SchemeSpec::Conventional, PredicationModel::Cmov)
            .predicate(PredicateConfig::paper_148kb())
            .validate()
            .unwrap_err();
        assert!(matches!(err, SimOptionsError::PredicateOverride { .. }));

        // The TAGE branch schemes have no second-level perceptron and no
        // configurable predicate predictor: both overrides are rejected.
        for scheme in [SchemeSpec::Tage, SchemeSpec::TageH2p] {
            assert!(matches!(
                SimOptions::new(scheme, PredicationModel::Cmov)
                    .perceptron(PerceptronConfig::paper_148kb())
                    .validate(),
                Err(SimOptionsError::PerceptronOverride { .. })
            ));
            assert!(matches!(
                SimOptions::new(scheme, PredicationModel::Cmov)
                    .predicate(PredicateConfig::paper_148kb())
                    .validate(),
                Err(SimOptionsError::PredicateOverride { .. })
            ));
        }
    }

    #[test]
    fn oracle_final_is_ideal_conventional_only() {
        let err = SimOptions::new(SchemeSpec::Predicate, PredicationModel::Selective)
            .oracle_final(true)
            .validate()
            .unwrap_err();
        assert!(matches!(err, SimOptionsError::OracleFinal { .. }));
        assert!(err.to_string().contains("ideal-conventional"), "{err}");
        assert!(
            SimOptions::new(SchemeSpec::IdealConventional, PredicationModel::Cmov)
                .oracle_final(true)
                .test_fault(TestFault::InvertOracle)
                .build_source(Machine::new(&halt_program()))
                .is_ok()
        );
    }

    #[test]
    fn applicable_overrides_pass() {
        assert!(
            SimOptions::new(SchemeSpec::Conventional, PredicationModel::Cmov)
                .perceptron(PerceptronConfig::paper_148kb())
                .validate()
                .is_ok()
        );
        assert!(
            SimOptions::new(SchemeSpec::Predicate, PredicationModel::Selective)
                .predicate(PredicateConfig::paper_148kb())
                .shadow(true)
                .trace_events(128)
                .validate()
                .is_ok()
        );
        // Capability-predicate regression (the old scheme-equality check
        // wrongly rejected every new scheme): the TAGE-indexed predicate
        // scheme accepts — and builds with — the predicate override.
        let program = halt_program();
        assert!(
            SimOptions::new(SchemeSpec::TagePredicate, PredicationModel::Selective)
                .predicate(PredicateConfig::paper_148kb())
                .build_source(Machine::new(&program))
                .is_ok()
        );
    }
}
