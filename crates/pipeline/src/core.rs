//! The execution-driven out-of-order core timing model.
//!
//! # Modelling approach
//!
//! The functional emulator supplies the committed-path instruction stream
//! (oracle values included); the simulator propagates per-instruction
//! *stage timestamps* — fetch, rename, issue, execute, commit — through
//! bounded resource models (Table 1 widths, queues, physical registers,
//! functional units, the cache hierarchy). Mispredicted branches stall
//! fetch until resolution plus the 10-cycle recovery (the classic
//! stall-on-mispredict approximation: no wrong-path fetch; speculative
//! predictor state is checkpoint-repaired exactly).
//!
//! # The predicate-prediction lifecycle (paper §3)
//!
//! * a fetched compare starts a predicate prediction keyed by the
//!   *compare* PC; at the compare's rename the predictions land in the
//!   predicate physical register file (PPRF) with the speculative bit set,
//! * a consumer (conditional branch, or predicated instruction under the
//!   selective model) renames its guard and reads the PPRF: if the compare
//!   has already executed it reads the *computed* value — an
//!   **early-resolved** branch, always correct; otherwise it uses the
//!   prediction,
//! * when the compare executes, the PPRF is updated; a mismatch against a
//!   used prediction flushes from the first consumer (the ROB pointer of
//!   Figure 3) with the 10-cycle recovery, and the global history bit the
//!   compare inserted is repaired in place — compares fetched in between
//!   keep their corrupted-history predictions (§3.3).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use ppsim_isa::{ExecInfo, ExecRecord, Insn, InsnSource, Machine, Program};
use ppsim_mem::{Hierarchy, HierarchyConfig, HierarchyStats};
use ppsim_obs::{EventKind, EventRing, StallBucket, TraceEvent};
use ppsim_predictors::{
    BranchPredictor, Gshare, IdealPerceptron, IdealPredicatePredictor, PepPa, PerceptronConfig,
    PerceptronPredictor, PredicatePredictor, Prediction, PredictorSet, SchemeSpec, Tage,
    TagePredicatePredictor,
};

use crate::config::{CoreConfig, PredicationModel};
use crate::decode::{self, flag, DecodeTable};
use crate::fxhash::FxMap;
use crate::options::{SimOptions, TestFault};
use crate::phases::{self, PhaseAcc, PhaseReport};
use crate::resources::{Pool, UnitSet, WidthLimiter};
use crate::stats::SimStats;

/// Number of architectural predicate registers tracked.
const NUM_PR: usize = 64;
/// I-cache line size for fetch-break modelling.
const ILINE: u64 = 64;

/// Outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Collected statistics.
    pub stats: SimStats,
    /// Whether the program halted (vs. exhausting the commit budget).
    pub halted: bool,
}

/// Rename-time view of the architectural predicate registers, stored as
/// flat per-field arrays (SoA) sized by the architectural register
/// count. The hot loop reads only the fields the current record needs —
/// one `u64` load per field instead of copying a whole per-register
/// struct — and the single-bit fields pack into one `u64` mask each.
///
/// Per register the file tracks: the cycle the computed value becomes
/// available (`done`, producer execute), the computed value itself
/// (oracle, from the trace), the stored prediction if the producer
/// generated one (value + confidence, with `pred_avail` the cycle it
/// lands in the PPRF at producer rename), the predictor tag for history
/// repair (realistic predicate scheme), the global-history push counter
/// right after the producer's push, the computed value of the *primary*
/// target (the bit the producer pushed into the global history), and
/// whether a wrong use of the prediction has already flushed (only the
/// first consumer flushes).
struct PredFile {
    done: [u64; NUM_PR],
    pred_avail: [u64; NUM_PR],
    push_index: [u64; NUM_PR],
    tag: [Option<ppsim_predictors::PredicatePrediction>; NUM_PR],
    /// Computed values, one bit per register.
    value: u64,
    /// Whether a stored prediction exists, one bit per register.
    pred_some: u64,
    /// Stored predicted values.
    pred_value: u64,
    /// Stored prediction confidence bits.
    pred_conf: u64,
    /// Primary-target computed values (history repair).
    primary_actual: u64,
    /// First-consumer-flushed bits.
    flushed: u64,
}

impl PredFile {
    /// All registers constant-false except the hardwired constant-true
    /// `p0`, no predictions stored.
    fn new() -> Self {
        PredFile {
            done: [0; NUM_PR],
            pred_avail: [0; NUM_PR],
            push_index: [0; NUM_PR],
            tag: [None; NUM_PR],
            value: 1,
            pred_some: 0,
            pred_value: 0,
            pred_conf: 0,
            primary_actual: 1,
            flushed: 0,
        }
    }

    #[inline]
    fn set_bit(mask: &mut u64, i: usize, v: bool) {
        *mask = (*mask & !(1 << i)) | ((v as u64) << i);
    }

    #[inline]
    fn value(&self, i: usize) -> bool {
        self.value >> i & 1 != 0
    }

    #[inline]
    fn set_value(&mut self, i: usize, v: bool) {
        Self::set_bit(&mut self.value, i, v);
    }

    /// The stored prediction: `(value, confident)` when one exists.
    #[inline]
    fn pred(&self, i: usize) -> Option<(bool, bool)> {
        (self.pred_some >> i & 1 != 0)
            .then(|| (self.pred_value >> i & 1 != 0, self.pred_conf >> i & 1 != 0))
    }

    #[inline]
    fn set_pred(&mut self, i: usize, value: bool, confident: bool) {
        self.pred_some |= 1 << i;
        Self::set_bit(&mut self.pred_value, i, value);
        Self::set_bit(&mut self.pred_conf, i, confident);
    }

    #[inline]
    fn flushed(&self, i: usize) -> bool {
        self.flushed >> i & 1 != 0
    }

    #[inline]
    fn set_flushed(&mut self, i: usize, v: bool) {
        Self::set_bit(&mut self.flushed, i, v);
    }

    #[inline]
    fn primary_actual(&self, i: usize) -> bool {
        self.primary_actual >> i & 1 != 0
    }

    #[inline]
    fn set_primary_actual(&mut self, i: usize, v: bool) {
        Self::set_bit(&mut self.primary_actual, i, v);
    }
}

/// One profiler lap: charges the time since the previous lap to `acc`
/// and restarts the clock. Consecutive laps telescope, so the bucket sum
/// equals the measured wall time of the enclosing region exactly.
/// Monomorphized away (no timestamp read, no branch) when `ON` is false.
#[inline(always)]
fn lap<const ON: bool>(last: &mut Option<Instant>, acc: &mut u64) {
    if ON {
        let now = Instant::now();
        if let Some(prev) = last.replace(now) {
            *acc += now.duration_since(prev).as_nanos() as u64;
        }
    }
}

enum Predictors {
    Conventional {
        l1: Gshare,
        l2: PerceptronPredictor,
    },
    PepPa {
        p: PepPa,
        /// (execute cycle, predicate register, value) — applied in time
        /// order before each prediction, modelling the out-of-order
        /// predicate-register writes that mislead PEP-PA on an OoO core.
        events: BinaryHeap<Reverse<(u64, u8, bool)>>,
    },
    Predicate {
        l1: Gshare,
        pp: PredicatePredictor,
    },
    IdealConventional {
        p: IdealPerceptron,
    },
    IdealPredicate {
        l1: Gshare,
        pp: IdealPredicatePredictor,
    },
    /// TAGE at fetch (optionally with the H2P side table); single-level,
    /// like PEP-PA, but with no predicate-write feedback.
    Tage {
        t: Tage,
    },
    /// TAGE-indexed predicate predictor: gshare at fetch, the tagged
    /// compare-PC PVT supplying predicate predictions.
    TagePredicate {
        l1: Gshare,
        pp: TagePredicatePredictor,
    },
}

impl Predictors {
    /// Wraps the factory-built predictor structures with the timing-model
    /// bookkeeping the pipeline keeps alongside them (PEP-PA's
    /// out-of-order predicate-write replay queue).
    fn from_set(set: PredictorSet) -> Self {
        match set {
            PredictorSet::Conventional { l1, l2 } => Predictors::Conventional { l1, l2 },
            PredictorSet::PepPa { p } => Predictors::PepPa {
                p,
                events: BinaryHeap::new(),
            },
            PredictorSet::Predicate { l1, pp } => Predictors::Predicate { l1, pp },
            PredictorSet::IdealConventional { p } => Predictors::IdealConventional { p },
            PredictorSet::IdealPredicate { l1, pp } => Predictors::IdealPredicate { l1, pp },
            PredictorSet::Tage { t } => Predictors::Tage { t },
            PredictorSet::TagePredicate { l1, pp } => Predictors::TagePredicate { l1, pp },
        }
    }
}

/// The simulator: instruction source + timing model + predictors.
///
/// The source `S` feeds the committed-stream records the timing model
/// replays: the default inline [`Machine`] (execution-driven mode, used
/// by the differential oracle for lockstep architectural diffing) or a
/// [`ppsim_isa::TraceCursor`] over a shared capture (trace-driven mode,
/// the sweep fast path). Both modes are built through
/// [`SimOptions::build_source`].
pub struct Simulator<S: InsnSource = Machine> {
    source: S,
    hierarchy: Hierarchy,
    cfg: CoreConfig,
    scheme: SchemeSpec,
    predication: PredicationModel,
    predictors: Predictors,
    shadow: Option<PerceptronPredictor>,
    // Check-harness knobs: oracle-exact ideal-conventional predictions,
    // and a deliberate predictor fault to prove the oracle catches one.
    oracle_final: bool,
    fault: Option<TestFault>,

    // Bandwidth limiters.
    fetch: WidthLimiter,
    rename: WidthLimiter,
    commit: WidthLimiter,
    // Bounded structures.
    rob: Pool,
    iq_int: Pool,
    iq_fp: Pool,
    iq_br: Pool,
    lq: Pool,
    sq: Pool,
    phys_int: Pool,
    phys_fp: Pool,
    phys_pred: Pool,
    // Functional units.
    int_units: UnitSet,
    fp_units: UnitSet,
    mem_units: UnitSet,
    br_units: UnitSet,

    // Static per-slot decode side-table (latency/IQ/unit classes,
    // resource needs, guard and register indices) and the latency table
    // its classes index — one load + bit tests per record instead of
    // per-record `Op` matches.
    decode: DecodeTable,
    lat: [u64; decode::lat::COUNT],
    // Scoreboard: cycle each architectural register's latest value is
    // available (program-order processing makes this the rename-time view).
    gr_done: [u64; 128],
    fr_done: [u64; 128],
    preds: PredFile,
    // Store forwarding: 8-byte-aligned address → (data-ready cycle, commit
    // cycle). Queried per load and written per store — fast hasher.
    stores: FxMap<u64, (u64, u64)>,
    // Global-history push counter (predicate schemes).
    ghr_pushes: u64,
    // Deferred history repairs: a mispredicted compare corrects the bit it
    // pushed when it *executes* (writeback). Compares fetched before that
    // cycle keep predicting with the corrupted bit — the §3.3 corruption
    // window. Entries: (repair cycle, primary prediction tag, computed
    // primary value, push index at prediction).
    pending_repairs: Vec<(u64, ppsim_predictors::PredicatePrediction, bool, u64)>,

    last_iline: u64,
    last_commit: u64,
    // Sampled-run measurement base: `begin_measurement` pins the commit
    // frontier and a hierarchy-counter snapshot here, so a measured
    // window reports cycles and memory statistics relative to where its
    // warmup phase ended. Both stay zero on ordinary full runs.
    cycle_base: u64,
    mem_base: HierarchyStats,
    // Stall bucket the most recent front-end redirect (mispredict, flush
    // or override re-steer) charges the next fetched instruction to.
    pending_redirect: Option<StallBucket>,
    stats: SimStats,
    // Per-static-branch (executions, mispredictions), indexed by slot —
    // a flat side-table like the decode table, with a spill map for the
    // (never-exercised in practice) slots beyond the installed code
    // image. One indexed add replaces a hash-map entry per branch.
    branch_hist: Vec<(u64, u64)>,
    branch_hist_spill: FxMap<u32, (u64, u64)>,
    events: Option<EventRing>,
    // Persistent staging buffer for per-instruction events, reused across
    // `process` calls so the hot path never allocates.
    ev_scratch: Vec<(u64, EventKind)>,
    // Phase-profiler accumulator; present only on profiled runs (the
    // record loop is monomorphized on its presence, so unprofiled runs
    // carry zero instrumentation).
    phases: Option<Box<PhaseAcc>>,
}

impl Simulator {
    /// Builds a simulator for `program` with the paper's memory system.
    ///
    /// Shorthand for [`SimOptions::new`] + `build` with no overrides; use
    /// the builder for instrumentation (event tracing, the shadow
    /// predictor) or predictor-geometry overrides.
    pub fn new(
        program: &Program,
        scheme: SchemeSpec,
        predication: PredicationModel,
        cfg: CoreConfig,
    ) -> Self {
        Simulator::from_options(program, SimOptions::new(scheme, predication).core(cfg))
    }

    /// Builds from pre-validated options ([`SimOptions::build`] is the
    /// public entry point).
    pub(crate) fn from_options(program: &Program, opts: SimOptions) -> Self {
        Simulator::from_source(Machine::new(program), opts)
    }

    /// The architectural machine state after the committed stream so far:
    /// registers, predicates and memory exactly as the functional emulator
    /// left them. The differential check oracle diffs this against an
    /// independent reference `Machine` run.
    pub fn machine(&self) -> &Machine {
        &self.source
    }
}

impl<S: InsnSource> Simulator<S> {
    /// Builds the timing model around an arbitrary instruction source
    /// ([`SimOptions::build_source`] is the public entry point).
    pub(crate) fn from_source(source: S, opts: SimOptions) -> Self {
        let cfg = opts.core;
        let predictors = Predictors::from_set(opts.scheme.build(opts.perceptron, opts.predicate));
        let decode = DecodeTable::new(source.code());
        let code_slots = decode.len();
        Simulator {
            source,
            hierarchy: Hierarchy::new(HierarchyConfig::paper()),
            scheme: opts.scheme,
            predication: opts.predication,
            predictors,
            shadow: opts
                .shadow
                .then(|| PerceptronPredictor::new(PerceptronConfig::paper_148kb())),
            oracle_final: opts.oracle_final,
            fault: opts.fault,
            fetch: WidthLimiter::new(cfg.fetch_width),
            rename: WidthLimiter::new(cfg.rename_width),
            commit: WidthLimiter::new(cfg.commit_width),
            rob: Pool::new(cfg.rob_entries),
            iq_int: Pool::new(cfg.iq_int),
            iq_fp: Pool::new(cfg.iq_fp),
            iq_br: Pool::new(cfg.iq_branch),
            lq: Pool::new(cfg.lq_entries),
            sq: Pool::new(cfg.sq_entries),
            phys_int: Pool::new(cfg.phys_int),
            phys_fp: Pool::new(cfg.phys_fp),
            phys_pred: Pool::new(cfg.phys_pred),
            int_units: UnitSet::new(cfg.int_units),
            fp_units: UnitSet::new(cfg.fp_units),
            mem_units: UnitSet::new(cfg.mem_ports),
            br_units: UnitSet::new(cfg.branch_units),
            decode,
            lat: decode::lat_table(&cfg.latencies),
            gr_done: [0; 128],
            fr_done: [0; 128],
            preds: PredFile::new(),
            stores: FxMap::default(),
            ghr_pushes: 0,
            pending_repairs: Vec::new(),
            last_iline: u64::MAX,
            last_commit: 0,
            cycle_base: 0,
            mem_base: HierarchyStats::default(),
            pending_redirect: None,
            stats: SimStats::default(),
            branch_hist: vec![(0, 0); code_slots],
            branch_hist_spill: FxMap::default(),
            events: (opts.trace_events > 0).then(|| EventRing::new(opts.trace_events)),
            ev_scratch: Vec::new(),
            phases: opts.profile_phases.then(Box::default),
            cfg,
        }
    }

    /// Rebuilds the per-slot decode table from `code`. The fused-lane
    /// driver ([`crate::LaneSet`]) builds its lanes on an empty
    /// [`crate::NullSource`] and installs the shared capture's code
    /// image here.
    pub(crate) fn install_code(&mut self, code: &[Insn]) {
        self.decode = DecodeTable::new(code);
        self.branch_hist = vec![(0, 0); self.decode.len()];
    }

    /// The accumulated phase attribution, when this simulator was built
    /// with [`SimOptions::profile_phases`].
    pub fn phase_report(&self) -> Option<PhaseReport> {
        self.phases.as_deref().copied().map(PhaseReport::from)
    }

    /// Per-static-branch rows `(slot, executions, mispredictions)`, sorted
    /// by slot for deterministic reporting.
    pub fn branch_histogram(&self) -> Vec<(u32, u64, u64)> {
        let mut rows: Vec<(u32, u64, u64)> = self
            .branch_hist
            .iter()
            .enumerate()
            .filter(|&(_, &(execs, _))| execs > 0)
            .map(|(slot, &(execs, miss))| (slot as u32, execs, miss))
            .collect();
        rows.extend(
            self.branch_hist_spill
                .iter()
                .map(|(&slot, &(execs, miss))| (slot, execs, miss)),
        );
        rows.sort_unstable_by_key(|&(slot, _, _)| slot);
        rows
    }

    /// The recorded event trace, if tracing was enabled.
    pub fn events(&self) -> Option<&EventRing> {
        self.events.as_ref()
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Runs until the source's program halts, the source's captured
    /// stream ends, or `max_commits` instructions commit.
    pub fn run(&mut self, max_commits: u64) -> RunResult {
        let mut halted = false;
        while self.stats.committed < max_commits {
            match self.source.next_record() {
                Ok(Some(rec)) => self.process(&rec),
                Ok(None) => {
                    halted = self.source.ended_halted();
                    break;
                }
                Err(e) => panic!("functional machine died: {e}"),
            }
        }
        self.finalize(halted)
    }

    /// Feeds one externally-decoded record through the timing model,
    /// bypassing this simulator's own source — the fused-lane driver
    /// ([`crate::LaneSet`]) decodes each record once and steps every lane
    /// with it. Exactly one instruction commits per record, so lanes
    /// driven in lockstep stay in lockstep.
    pub(crate) fn step(&mut self, rec: &ExecRecord) {
        self.process(rec);
    }

    /// Folds the end-of-run derived statistics (memory-hierarchy deltas
    /// relative to the measurement base, the per-branch histogram) into
    /// the result. `run` and the fused-lane driver share this so a fused
    /// lane's report is structurally identical to a solo run's.
    pub(crate) fn finalize(&mut self, halted: bool) -> RunResult {
        self.stats.mem = self.hierarchy.stats().delta_since(&self.mem_base);
        self.stats.branch_pcs = self.branch_histogram();
        RunResult {
            stats: self.stats.clone(),
            halted,
        }
    }

    /// The first-level gshare's global-history register, `None` for
    /// schemes without one. Fault-injection hook for the fused-lane
    /// isolation check; never read on measurement runs.
    #[doc(hidden)]
    pub fn l1_ghr(&self) -> Option<u64> {
        match &self.predictors {
            Predictors::Conventional { l1, .. }
            | Predictors::Predicate { l1, .. }
            | Predictors::IdealPredicate { l1, .. }
            | Predictors::TagePredicate { l1, .. } => Some(l1.ghr_value()),
            Predictors::PepPa { .. }
            | Predictors::IdealConventional { .. }
            | Predictors::Tage { .. } => None,
        }
    }

    /// Overwrites the first-level gshare's global-history register (no-op
    /// for schemes without one). Fault-injection hook for the fused-lane
    /// isolation check; never called on measurement runs.
    #[doc(hidden)]
    pub fn set_l1_ghr(&mut self, value: u64) {
        match &mut self.predictors {
            Predictors::Conventional { l1, .. }
            | Predictors::Predicate { l1, .. }
            | Predictors::IdealPredicate { l1, .. }
            | Predictors::TagePredicate { l1, .. } => l1.set_ghr_value(value),
            Predictors::PepPa { .. }
            | Predictors::IdealConventional { .. }
            | Predictors::Tage { .. } => {}
        }
    }

    /// Starts a measured window: everything simulated so far (the warmup
    /// phase) trained the predictors, caches and TLBs but is dropped from
    /// the reported statistics. Counters reset to zero; cycles and memory
    /// statistics are reported relative to the current commit frontier and
    /// hierarchy counters, so the pinned `stall.total() == cycles`
    /// invariant holds *per measured window*.
    pub fn begin_measurement(&mut self) {
        self.cycle_base = self.last_commit;
        self.mem_base = self.hierarchy.stats();
        self.stats = SimStats::default();
        self.branch_hist.fill((0, 0));
        self.branch_hist_spill.clear();
        if let Some(ring) = self.events.as_mut() {
            ring.push(TraceEvent {
                seq: 0,
                pc: 0,
                cycle: self.cycle_base,
                kind: EventKind::MeasurementBegin,
            });
        }
    }

    /// Runs one sampled window: `warmup` committed instructions through
    /// the full timing model with statistics suppressed, then `measure`
    /// committed instructions that are reported. The source must already
    /// be positioned at the window start (a restored
    /// [`ppsim_isa::Checkpoint`] or a [`ppsim_isa::TraceCursor`] window).
    pub fn run_sample(&mut self, warmup: u64, measure: u64) -> RunResult {
        self.run(warmup);
        self.begin_measurement();
        self.run(measure)
    }

    /// First-level (fetch-time) direction prediction for a conditional
    /// branch; `None` when the scheme has no first level (ideal
    /// conventional).
    fn l1_predict(&mut self, pc: u64, guard: u8, fetch: u64) -> Option<Prediction> {
        match &mut self.predictors {
            Predictors::Conventional { l1, .. }
            | Predictors::Predicate { l1, .. }
            | Predictors::IdealPredicate { l1, .. }
            | Predictors::TagePredicate { l1, .. } => Some(l1.predict(pc, guard)),
            Predictors::Tage { t } => Some(t.predict(pc, guard)),
            Predictors::PepPa { p, events } => {
                // Apply predicate-register writes that have executed by now
                // (out of program order).
                while let Some(Reverse((t, preg, v))) = events.peek().copied() {
                    if t <= fetch {
                        events.pop();
                        p.note_predicate_write(preg, v);
                    } else {
                        break;
                    }
                }
                Some(p.predict(pc, guard))
            }
            Predictors::IdealConventional { .. } => None,
        }
    }

    /// Routes one record to the monomorphized record loop. The four
    /// instantiations differ only in which instrumentation they carry:
    /// the common (untraced, unprofiled) grid path compiles with zero
    /// `if tracing` checks, no event-buffer take/put and no timestamp
    /// reads.
    fn process(&mut self, rec: &ExecRecord) {
        match (self.events.is_some(), self.phases.is_some()) {
            (false, false) => self.process_rec::<false, false>(rec),
            (true, false) => self.process_rec::<true, false>(rec),
            (false, true) => self.process_rec::<false, true>(rec),
            (true, true) => self.process_rec::<true, true>(rec),
        }
    }

    fn process_rec<const TRACING: bool, const PROFILING: bool>(&mut self, rec: &ExecRecord) {
        let mut last: Option<Instant> = if PROFILING {
            Some(Instant::now())
        } else {
            None
        };
        let mut ph = [0u64; phases::COUNT];
        let pc = Program::pc_of(rec.slot);
        // One indexed load replaces the per-record `Op` matches: latency,
        // IQ/unit class, resource needs and register indices are static
        // per slot (see `crate::decode`).
        let meta = self.decode.meta(rec.slot, &rec.insn);
        // Event staging area: (cycle, kind) pairs flushed to the ring once
        // every timestamp is known (the ring cannot be borrowed while the
        // predictors are). The buffer persists across calls so the hot
        // path never allocates; untraced instantiations never touch it.
        let mut evs = if TRACING {
            std::mem::take(&mut self.ev_scratch)
        } else {
            Vec::new()
        };

        // The first instruction fetched after a redirect inherits its
        // cause for stall attribution.
        let redirect_bucket = self.pending_redirect.take();

        // ---- Fetch ----
        let mut f = self.fetch.book(0);
        let mut fetch_delayed = false;
        let iline = pc / ILINE;
        if iline != self.last_iline {
            let done = self.hierarchy.inst_fetch(f, pc);
            if done > f + 1 {
                fetch_delayed = true;
                self.fetch.redirect(done);
                f = self.fetch.book(0);
            }
            self.last_iline = iline;
        }
        self.stats.fetched += 1;
        lap::<PROFILING>(&mut last, &mut ph[phases::FETCH]);

        // Fetch-time prediction state for branches.
        let is_cond_branch = meta.is(flag::COND_BRANCH);
        let l1_pred = if is_cond_branch {
            self.l1_predict(pc, meta.qp, f)
        } else {
            None
        };
        lap::<PROFILING>(&mut last, &mut ph[phases::PREDICT]);

        // Predicate predictions are generated at compare fetch (realistic
        // scheme) or oracle-computed (ideal scheme); they are written to
        // the PPRF at the compare's rename, handled below once the rename
        // cycle is known.

        // ---- Rename ----
        let mut r = self.rename.book(f + self.cfg.front_stages);
        // Structural resources that gate rename.
        let mut gate = r;
        gate = gate.max(self.rob.earliest(r));
        let iq = match meta.iq {
            decode::iq::BR => &mut self.iq_br,
            decode::iq::FP => &mut self.iq_fp,
            _ => &mut self.iq_int,
        };
        gate = gate.max(iq.earliest(r));
        if meta.is(flag::LOAD) {
            gate = gate.max(self.lq.earliest(r));
        }
        if meta.is(flag::STORE) {
            gate = gate.max(self.sq.earliest(r));
        }
        if meta.gr_dst != decode::NO_REG {
            gate = gate.max(self.phys_int.earliest(r));
        }
        if meta.fr_dst != decode::NO_REG {
            gate = gate.max(self.phys_fp.earliest(r));
        }
        for _ in 0..meta.pr_dst_count {
            gate = gate.max(self.phys_pred.earliest(r));
        }
        let rename_gated = gate > r;
        if rename_gated {
            self.rename.redirect(gate);
            r = self.rename.book(0);
        }
        self.stats.renamed += 1;
        lap::<PROFILING>(&mut last, &mut ph[phases::RENAME]);

        // ---- Compare: generate predictions into the PPRF ----
        if meta.is(flag::CMP) {
            self.stats.compares += 1;
            // The paper's prediction is pipelined from fetch to rename
            // ("a multicycle prediction can be performed"); the history is
            // read at the end of that window, so repairs that land by the
            // rename cycle are visible.
            self.apply_pending_repairs(r);
            self.compare_predict(rec, pc, r);
        }

        // ---- Consumer behaviour at rename ----
        // Snapshot the guard register AFTER the compare block above: a
        // compare whose qualifying predicate aliases its own target must
        // observe its freshly installed prediction state.
        let guard_idx = meta.qp as usize;
        let guard_done = self.preds.done[guard_idx];
        let guard_value = self.preds.value(guard_idx);
        let guard_pred = self.preds.pred(guard_idx);
        let guard_pred_avail = self.preds.pred_avail[guard_idx];
        let guard_known_at_rename = guard_done <= r;

        // Selective predication decisions (non-branch predicated
        // instructions under the predicate scheme).
        #[derive(PartialEq)]
        enum Disposition {
            Normal,
            Cmov,
            Cancelled { wrong: bool },
            Unguarded { wrong: bool },
        }
        let mut disposition = Disposition::Normal;
        if meta.flags & (flag::PREDICATED | flag::BRANCH | flag::CMP) == flag::PREDICATED {
            disposition = match self.predication {
                PredicationModel::Cmov => Disposition::Cmov,
                PredicationModel::Selective if !self.scheme.is_predicate() => Disposition::Cmov,
                PredicationModel::Selective => {
                    if guard_known_at_rename {
                        if guard_value {
                            Disposition::Unguarded { wrong: false }
                        } else {
                            Disposition::Cancelled { wrong: false }
                        }
                    } else {
                        match guard_pred {
                            Some((pv, true)) if guard_pred_avail <= r => {
                                if pv {
                                    self.stats.unguarded_at_rename += 1;
                                    if TRACING {
                                        evs.push((
                                            r,
                                            EventKind::UnguardAtRename { wrong: !rec.qp },
                                        ));
                                    }
                                    Disposition::Unguarded { wrong: !rec.qp }
                                } else {
                                    self.stats.cancelled_at_rename += 1;
                                    if TRACING {
                                        evs.push((r, EventKind::CancelAtRename { wrong: rec.qp }));
                                    }
                                    Disposition::Cancelled { wrong: rec.qp }
                                }
                            }
                            _ => Disposition::Cmov,
                        }
                    }
                }
            };
        }

        // ---- Branch final prediction at rename ----
        let mut branch_final: Option<bool> = None;
        let mut branch_early_resolved = false;
        let mut branch_used_pprf_pred = false;
        let mut l2_tag: Option<Prediction> = None;
        if is_cond_branch {
            let actual = rec.qp; // a branch is taken iff its guard is true
            let (final_dir, early, used_pred) = match &mut self.predictors {
                Predictors::Conventional { l2, .. } => {
                    let p = l2.predict(pc, guard_idx as u8);
                    let d = p.taken;
                    l2_tag = Some(p);
                    (d, false, false)
                }
                Predictors::PepPa { .. } | Predictors::Tage { .. } => (
                    l1_pred.as_ref().map(|p| p.taken).unwrap_or(false),
                    false,
                    false,
                ),
                Predictors::Predicate { .. }
                | Predictors::IdealPredicate { .. }
                | Predictors::TagePredicate { .. } => {
                    if guard_known_at_rename {
                        // Fault injection (check harness): corrupt the
                        // computed guard an early-resolved branch consumes.
                        let flip = self.fault == Some(TestFault::InvertEarlyResolve);
                        (guard_value ^ flip, true, false)
                    } else if let Some((pv, _conf)) = guard_pred {
                        if guard_pred_avail <= r {
                            (pv, false, true)
                        } else {
                            // Prediction not yet in the PPRF (back-to-back
                            // compare/branch): fall back to the first level.
                            (
                                l1_pred.as_ref().map(|p| p.taken).unwrap_or(false),
                                false,
                                false,
                            )
                        }
                    } else {
                        (
                            l1_pred.as_ref().map(|p| p.taken).unwrap_or(false),
                            false,
                            false,
                        )
                    }
                }
                Predictors::IdealConventional { p } => {
                    let trained = p.predict_and_train(pc, actual);
                    let dir = if self.oracle_final {
                        // Oracle-exact mode (check harness): the final
                        // direction *is* the outcome, so "zero mispredict
                        // flushes" holds as a hard invariant — unless the
                        // injected fault deliberately breaks it.
                        actual ^ (self.fault == Some(TestFault::InvertOracle))
                    } else {
                        trained
                    };
                    (dir, false, false)
                }
            };
            branch_final = Some(final_dir);
            branch_early_resolved = early;
            branch_used_pprf_pred = used_pred;
            if early {
                self.stats.early_resolved += 1;
            }
            if TRACING {
                if early {
                    evs.push((r, EventKind::EarlyResolve { taken: final_dir }));
                } else {
                    evs.push((
                        r,
                        EventKind::PredictionMade {
                            taken: final_dir,
                            from_predicate: used_pred,
                        },
                    ));
                }
            }
            // Second-level override re-steer.
            if let Some(l1p) = l1_pred.as_ref() {
                if l1p.taken != final_dir {
                    self.stats.overrides += 1;
                    if TRACING {
                        evs.push((
                            r,
                            EventKind::PredictionOverridden {
                                from: l1p.taken,
                                to: final_dir,
                            },
                        ));
                    }
                    self.pending_redirect = Some(StallBucket::FlushRecovery);
                    self.fetch.redirect(r + self.cfg.override_bubble);
                    // Repair the first-level history to the overriding
                    // direction.
                    match &mut self.predictors {
                        Predictors::Conventional { l1, .. }
                        | Predictors::Predicate { l1, .. }
                        | Predictors::IdealPredicate { l1, .. }
                        | Predictors::TagePredicate { l1, .. } => l1.recover(l1p, final_dir),
                        _ => {}
                    }
                }
            }
        }

        lap::<PROFILING>(&mut last, &mut ph[phases::PREDICT]);

        // ---- Dependencies ----
        let mut ready = r + 1;
        if meta.gr_src0 != decode::NO_REG {
            ready = ready.max(self.gr_done[meta.gr_src0 as usize]);
        }
        if meta.gr_src1 != decode::NO_REG {
            ready = ready.max(self.gr_done[meta.gr_src1 as usize]);
        }
        if meta.fr_src0 != decode::NO_REG {
            ready = ready.max(self.fr_done[meta.fr_src0 as usize]);
        }
        if meta.fr_src1 != decode::NO_REG {
            ready = ready.max(self.fr_done[meta.fr_src1 as usize]);
        }
        // Guard as a data dependence: branches verify against the computed
        // predicate; compares read their qualifying predicate; cmov-style
        // predicated instructions read guard and old destination.
        let needs_guard = meta.is(flag::PREDICATED)
            && (meta.flags & (flag::BRANCH | flag::CMP) != 0
                || disposition == Disposition::Cmov
                || disposition == Disposition::Normal);
        if needs_guard {
            ready = ready.max(guard_done);
        }
        if disposition == Disposition::Cmov {
            if meta.gr_dst != decode::NO_REG {
                ready = ready.max(self.gr_done[meta.gr_dst as usize]);
            }
            if meta.fr_dst != decode::NO_REG {
                ready = ready.max(self.fr_done[meta.fr_dst as usize]);
            }
        }

        // ---- Issue & execute ----
        let cancelled = matches!(disposition, Disposition::Cancelled { .. });
        let lat = self.lat[meta.lat as usize];
        let mut exec_done;
        let mut issue = r; // for IQ release bookkeeping
        if cancelled {
            // Removed from the pipeline at rename: no IQ wait, no FU.
            exec_done = r + 1;
        } else {
            let unit = match meta.unit {
                decode::unit::BR => &mut self.br_units,
                decode::unit::FP => &mut self.fp_units,
                decode::unit::MEM => &mut self.mem_units,
                _ => &mut self.int_units,
            };
            issue = unit.issue(ready);
            exec_done = issue + lat;
            if meta.is(flag::LOAD) && rec.qp {
                if let ExecInfo::Mem { addr } = rec.info {
                    let a8 = addr & !7;
                    if let Some(&(data_ready, st_commit)) = self.stores.get(&a8) {
                        if st_commit > issue {
                            // Store-to-load forwarding from the store queue.
                            exec_done = issue.max(data_ready) + 1;
                        } else {
                            exec_done = self.hierarchy.data_access(issue, addr, false);
                        }
                    } else {
                        exec_done = self.hierarchy.data_access(issue, addr, false);
                    }
                }
            }
        }
        lap::<PROFILING>(&mut last, &mut ph[phases::EXEC]);

        // ---- Predicate-speculation verification (consumer flush) ----
        // A consumer that used a wrong stored prediction is flushed when
        // the producer executes; it refetches and completes with the
        // computed value.
        let penalty = self.cfg.mispredict_penalty;
        let mut flush_refetch: Option<u64> = None;
        // Which stall bucket this instruction's own flush-refetch (and the
        // refetch of everything behind it) is charged to.
        let mut flush_bucket: Option<StallBucket> = None;
        match disposition {
            Disposition::Cancelled { wrong: true } | Disposition::Unguarded { wrong: true } => {
                if !self.preds.flushed(guard_idx) {
                    self.preds.set_flushed(guard_idx, true);
                    self.stats.predication_flushes += 1;
                    if TRACING {
                        evs.push((guard_done, EventKind::PredicationFlush));
                    }
                    if self.cfg.history_repair {
                        self.repair_predicate_history(guard_idx);
                        if TRACING {
                            evs.push((guard_done, EventKind::PredictionUndone));
                        }
                    }
                }
                flush_refetch = Some(guard_done + penalty);
                flush_bucket = Some(StallBucket::PredicationFlush);
            }
            _ => {}
        }

        let mut branch_mispredicted = false;
        if let Some(final_dir) = branch_final {
            let actual = rec.qp;
            let h = match self.branch_hist.get_mut(rec.slot as usize) {
                Some(h) => h,
                None => self.branch_hist_spill.entry(rec.slot).or_insert((0, 0)),
            };
            h.0 += 1;
            if final_dir != actual {
                h.1 += 1;
                branch_mispredicted = true;
                self.stats.mispredicts += 1;
                if branch_early_resolved {
                    // §3.2: an early-resolved branch consumed the computed
                    // predicate, so a mismatch is a pipeline bug (or an
                    // injected check-harness fault). The oracle pins this
                    // counter to zero.
                    self.stats.early_resolved_mispredicts += 1;
                }
                if branch_used_pprf_pred {
                    // Detected when the producing compare executes: flush
                    // from this branch (the recorded ROB pointer).
                    if !self.preds.flushed(guard_idx) {
                        self.preds.set_flushed(guard_idx, true);
                        if self.cfg.history_repair {
                            self.repair_predicate_history(guard_idx);
                            if TRACING {
                                evs.push((guard_done, EventKind::PredictionUndone));
                            }
                        }
                    }
                    flush_refetch = Some(guard_done + penalty);
                    flush_bucket = Some(StallBucket::FlushRecovery);
                    if TRACING {
                        evs.push((guard_done, EventKind::BranchFlush));
                    }
                } else {
                    // Detected at branch execution.
                    self.fetch.redirect(exec_done + penalty);
                    self.fetch.break_group();
                    self.pending_redirect = Some(StallBucket::FlushRecovery);
                    if TRACING {
                        evs.push((exec_done, EventKind::BranchFlush));
                    }
                }
                // First-level repair with the actual outcome.
                if let Some(l1p) = l1_pred.as_ref() {
                    match &mut self.predictors {
                        Predictors::Conventional { l1, .. }
                        | Predictors::Predicate { l1, .. }
                        | Predictors::IdealPredicate { l1, .. }
                        | Predictors::TagePredicate { l1, .. } => l1.recover(l1p, actual),
                        Predictors::PepPa { p, .. } => p.recover(l1p, actual),
                        Predictors::Tage { t } => t.recover(l1p, actual),
                        Predictors::IdealConventional { .. } => {}
                    }
                }
                if let Some(tag) = l2_tag.as_ref() {
                    if let Predictors::Conventional { l2, .. } = &mut self.predictors {
                        l2.recover(tag, actual);
                    }
                }
            }
            // Train the branch-PC predictors with the outcome.
            match &mut self.predictors {
                Predictors::Conventional { l1, l2 } => {
                    if let Some(tag) = l2_tag.as_ref() {
                        l2.train(tag, actual);
                    }
                    if let Some(l1p) = l1_pred.as_ref() {
                        l1.train(l1p, actual);
                    }
                }
                Predictors::PepPa { p, .. } => {
                    if let Some(l1p) = l1_pred.as_ref() {
                        p.train(l1p, actual);
                    }
                }
                Predictors::Predicate { l1, .. }
                | Predictors::IdealPredicate { l1, .. }
                | Predictors::TagePredicate { l1, .. } => {
                    if let Some(l1p) = l1_pred.as_ref() {
                        l1.train(l1p, actual);
                    }
                }
                Predictors::Tage { t } => {
                    if let Some(l1p) = l1_pred.as_ref() {
                        t.train(l1p, actual);
                    }
                }
                Predictors::IdealConventional { .. } => {}
            }
            // Shadow conventional predictor (Figure 6b attribution).
            if let Some(shadow) = self.shadow.as_mut() {
                let sp = shadow.predict(pc, guard_idx as u8);
                if sp.taken != actual {
                    self.stats.shadow_mispredicts += 1;
                    if branch_early_resolved {
                        self.stats.early_resolved_saves += 1;
                    }
                    shadow.recover(&sp, actual);
                }
                shadow.train(&sp, actual);
            }
        }

        // A consumer flush restarts this instruction after the producer
        // resolves; post-flush it reads the computed predicate.
        if let Some(f2) = flush_refetch {
            self.fetch.redirect(f2);
            self.fetch.break_group();
            self.pending_redirect = flush_bucket;
            let r2 = f2 + self.cfg.front_stages;
            exec_done = (r2 + 1).max(ready) + lat;
            issue = issue.max(r2 + 1);
            // The squashed consumer travels fetch and rename a second
            // time; wrong-path instructions behind it are not modelled
            // individually (stall-on-mispredict), so these counters track
            // committed-path stage traffic only.
            self.stats.fetched += 1;
            self.stats.renamed += 1;
        }

        // ---- Writeback: scoreboard and PPRF updates ----
        if rec.qp || matches!(disposition, Disposition::Cmov) {
            if meta.gr_dst != decode::NO_REG {
                self.gr_done[meta.gr_dst as usize] = exec_done;
            }
            if meta.fr_dst != decode::NO_REG {
                self.fr_done[meta.fr_dst as usize] = exec_done;
            }
        }
        if let ExecInfo::Cmp {
            pt_write, pf_write, ..
        } = rec.info
        {
            let [pt, pf] = rec.insn.pr_dsts();
            // The primary target is the one whose predicted bit fed the
            // global history: pt when it names a real register, else pf.
            let primary_actual = if pt.is_some() {
                pt_write.unwrap_or(false)
            } else {
                pf_write.unwrap_or(false)
            };
            let pairs = [(pt, pt_write), (pf, pf_write)];
            for (target, write) in pairs {
                let (Some(target), Some(value)) = (target, write) else {
                    continue;
                };
                let i = target.index();
                self.preds.done[i] = exec_done;
                self.preds.set_value(i, value);
                self.preds.set_primary_actual(i, primary_actual);
                self.preds.set_flushed(i, false);
                // pred/tag/pred_avail were installed by compare_predict.
                if let Predictors::PepPa { events, .. } = &mut self.predictors {
                    events.push(Reverse((exec_done, i as u8, value)));
                }
            }
            // Writeback-time history repair (realistic predicate scheme):
            // if the bit this compare pushed was wrong, schedule its
            // correction for the writeback cycle.
            if self.cfg.history_repair
                && matches!(
                    self.predictors,
                    Predictors::Predicate { .. } | Predictors::TagePredicate { .. }
                )
            {
                if let Some(primary) = pt.or(pf) {
                    let i = primary.index();
                    if let (Some((pv, _)), Some(tag)) = (self.preds.pred(i), self.preds.tag[i]) {
                        if pv != self.preds.primary_actual(i) {
                            self.pending_repairs.push((
                                exec_done,
                                tag,
                                self.preds.primary_actual(i),
                                self.preds.push_index[i],
                            ));
                        }
                    }
                }
            }
        }
        lap::<PROFILING>(&mut last, &mut ph[phases::EXEC]);

        // ---- Commit (in order) ----
        let prev_commit = self.last_commit;
        let c = self.commit.book((exec_done + 1).max(self.last_commit));
        self.last_commit = c;

        // ---- Stall attribution ----
        // The commit frontier advanced by `delta` cycles because of this
        // instruction; charge the whole advance to the single dominant
        // cause along its path. Charging commit-deltas makes the invariant
        // `cycles == Σ buckets` hold by construction: the frontier starts
        // at 0, is monotone, and ends at `stats.cycles`.
        let delta = c - prev_commit;
        if delta > 0 {
            let bucket = if let Some(b) = flush_bucket {
                // This instruction itself was flush-refetched.
                b
            } else if c > exec_done + 1 {
                // Ready before the frontier reached it: commit bandwidth.
                StallBucket::CommitBound
            } else if !cancelled && (ready > r + 1 || issue > ready || exec_done > issue + lat) {
                // Operand wait, functional-unit contention, or extended
                // execution (data-cache access).
                StallBucket::IssueWait
            } else if rename_gated {
                StallBucket::RenameStall
            } else if let Some(b) = redirect_bucket {
                // First fetch after a mispredict/flush/override redirect.
                b
            } else if fetch_delayed {
                StallBucket::FetchMiss
            } else {
                // Flowing at machine width: the useful-work baseline.
                StallBucket::CommitBound
            };
            self.stats.stall.charge(bucket, delta);
        }
        if meta.is(flag::STORE) && rec.qp {
            if let ExecInfo::Mem { addr } = rec.info {
                self.hierarchy.data_access(c, addr, true);
                self.stores.insert(addr & !7, (exec_done, c));
            }
        }

        // Register resource holds now that all timestamps are known.
        self.rob.acquire(r, c);
        let iq = match meta.iq {
            decode::iq::BR => &mut self.iq_br,
            decode::iq::FP => &mut self.iq_fp,
            _ => &mut self.iq_int,
        };
        if !cancelled {
            iq.acquire(r, issue + 1);
        }
        if meta.is(flag::LOAD) {
            self.lq.acquire(r, c);
        }
        if meta.is(flag::STORE) {
            self.sq.acquire(r, c);
        }
        if meta.gr_dst != decode::NO_REG {
            self.phys_int.acquire(r, c);
        }
        if meta.fr_dst != decode::NO_REG {
            self.phys_fp.acquire(r, c);
        }
        for _ in 0..meta.pr_dst_count {
            self.phys_pred.acquire(r, c);
        }

        if TRACING {
            evs.push((
                c,
                EventKind::Retire {
                    fetch: f,
                    rename: r,
                    issue,
                    exec: exec_done,
                    commit: c,
                },
            ));
            if let Some(ring) = self.events.as_mut() {
                for (cycle, kind) in evs.drain(..) {
                    ring.push(TraceEvent {
                        seq: rec.seq,
                        pc,
                        cycle,
                        kind,
                    });
                }
            }
            evs.clear();
            self.ev_scratch = evs;
        }

        // ---- Statistics ----
        self.stats.committed += 1;
        self.stats.cycles = c - self.cycle_base;
        if meta.is(flag::BRANCH) {
            if is_cond_branch {
                self.stats.cond_branches += 1;
            } else {
                self.stats.uncond_branches += 1;
            }
        }
        if meta.is(flag::PREDICATED) && !rec.qp {
            self.stats.nullified += 1;
        }
        let _ = branch_mispredicted;
        if rec.is_taken_branch() {
            self.fetch.break_group();
        }

        lap::<PROFILING>(&mut last, &mut ph[phases::COMMIT]);
        if PROFILING {
            if let Some(acc) = self.phases.as_deref_mut() {
                for (a, d) in acc.nanos.iter_mut().zip(ph) {
                    *a += d;
                }
                acc.records += 1;
            }
        }
    }

    /// Generates the predicate predictions for a fetched compare and
    /// installs them in the PPRF view (available from the compare's rename
    /// cycle `r`).
    fn compare_predict(&mut self, rec: &ExecRecord, pc: u64, r: u64) {
        let [pt, pf] = rec.insn.pr_dsts();
        let (need_pt, need_pf) = (pt.is_some(), pf.is_some());
        if !need_pt && !need_pf {
            return;
        }
        // Oracle values the compare will write (None for unwritten
        // targets, e.g. disqualified normal-type compares).
        let (apt, apf) = match rec.info {
            ExecInfo::Cmp {
                pt_write, pf_write, ..
            } => (pt_write, pf_write),
            _ => (None, None),
        };

        match &mut self.predictors {
            Predictors::Predicate { pp, .. } => {
                let cp = pp.predict_compare(pc, need_pt, need_pf);
                if cp.ghr_pushed {
                    self.ghr_pushes += 1;
                }
                let pairs = [(pt, cp.pt, apt), (pf, cp.pf, apf)];
                for (target, prediction, actual) in pairs {
                    let (Some(target), Some(prediction)) = (target, prediction) else {
                        continue;
                    };
                    self.stats.predicate_predictions += 1;
                    let i = target.index();
                    self.preds
                        .set_pred(i, prediction.value, prediction.confident);
                    self.preds.pred_avail[i] = r;
                    self.preds.tag[i] = Some(prediction);
                    self.preds.push_index[i] = self.ghr_pushes;
                    self.preds.set_flushed(i, false);
                    // Train with the computed value (processing order is
                    // program order = commit order).
                    if let Some(actual) = actual {
                        if prediction.value != actual {
                            self.stats.predicate_mispredictions += 1;
                        }
                        pp.train(&prediction, actual);
                    }
                }
            }
            Predictors::TagePredicate { pp, .. } => {
                let cp = pp.predict_compare(pc, need_pt, need_pf);
                if cp.ghr_pushed {
                    self.ghr_pushes += 1;
                }
                let pairs = [(pt, cp.pt, apt), (pf, cp.pf, apf)];
                for (target, prediction, actual) in pairs {
                    let (Some(target), Some(prediction)) = (target, prediction) else {
                        continue;
                    };
                    self.stats.predicate_predictions += 1;
                    let i = target.index();
                    self.preds
                        .set_pred(i, prediction.value, prediction.confident);
                    self.preds.pred_avail[i] = r;
                    self.preds.tag[i] = Some(prediction);
                    self.preds.push_index[i] = self.ghr_pushes;
                    self.preds.set_flushed(i, false);
                    if let Some(actual) = actual {
                        if prediction.value != actual {
                            self.stats.predicate_mispredictions += 1;
                        }
                        pp.train(&prediction, actual);
                    }
                }
            }
            Predictors::IdealPredicate { pp, .. } => {
                let (ppt, ppf) = pp.predict_compare_and_train(pc, apt, apf);
                self.ghr_pushes += 1;
                let pairs = [(pt, ppt, apt), (pf, ppf, apf)];
                for (target, prediction, actual) in pairs {
                    let (Some(target), Some(prediction)) = (target, prediction) else {
                        continue;
                    };
                    self.stats.predicate_predictions += 1;
                    if actual.is_some() && prediction != actual.unwrap_or(false) {
                        self.stats.predicate_mispredictions += 1;
                    }
                    let i = target.index();
                    self.preds.set_pred(i, prediction, true);
                    self.preds.pred_avail[i] = r;
                    self.preds.tag[i] = None;
                    self.preds.push_index[i] = self.ghr_pushes;
                    self.preds.set_flushed(i, false);
                }
            }
            _ => {}
        }
    }

    /// Applies all deferred writeback-time history repairs whose compare
    /// has executed by cycle `now`. Ages are computed against the current
    /// push counter, so compares fetched inside the corruption window have
    /// already predicted with the wrong bit.
    fn apply_pending_repairs(&mut self, now: u64) {
        if self.pending_repairs.is_empty() {
            return;
        }
        let pushes = self.ghr_pushes;
        match &mut self.predictors {
            Predictors::Predicate { pp, .. } => {
                self.pending_repairs
                    .retain(|(cycle, tag, actual, push_index)| {
                        if *cycle <= now {
                            let age = (pushes - push_index) as u32;
                            pp.repair_history(tag, *actual, age);
                            false
                        } else {
                            true
                        }
                    });
            }
            Predictors::TagePredicate { pp, .. } => {
                self.pending_repairs
                    .retain(|(cycle, tag, actual, push_index)| {
                        if *cycle <= now {
                            let age = (pushes - push_index) as u32;
                            pp.repair_history(tag, *actual, age);
                            false
                        } else {
                            true
                        }
                    });
            }
            _ => self.pending_repairs.clear(),
        }
    }

    /// §3.3 recovery: fix the global-history bit the mispredicted
    /// producer inserted, leaving younger compares' (possibly corrupted)
    /// predictions in place. The bit pushed was the *primary* target's
    /// predicted value, so the repair writes the primary target's computed
    /// value — which is the complement of the consumer-visible value when
    /// the consumer guards on the second target of an `unc` compare.
    fn repair_predicate_history(&mut self, guard_idx: usize) {
        let tag = self.preds.tag[guard_idx];
        let push_index = self.preds.push_index[guard_idx];
        let primary_actual = self.preds.primary_actual(guard_idx);
        match &mut self.predictors {
            Predictors::Predicate { pp, .. } => {
                if let Some(tag) = tag.as_ref() {
                    let age = (self.ghr_pushes - push_index) as u32;
                    pp.repair_history(tag, primary_actual, age);
                }
            }
            Predictors::TagePredicate { pp, .. } => {
                if let Some(tag) = tag.as_ref() {
                    let age = (self.ghr_pushes - push_index) as u32;
                    pp.repair_history(tag, primary_actual, age);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoreConfig, PredicationModel};
    use ppsim_isa::{Asm, CmpRel, CmpType, Gr, Operand, Pr, TraceCursor};
    use ppsim_predictors::SchemeSpec;

    fn g(i: u8) -> Gr {
        Gr::new(i)
    }
    fn p(i: u8) -> Pr {
        Pr::new(i)
    }

    fn sim(program: &ppsim_isa::Program, scheme: SchemeSpec) -> Simulator {
        Simulator::new(program, scheme, PredicationModel::Cmov, CoreConfig::paper())
    }

    /// A counted loop with a data-dependent branch inside. `dist` filler
    /// ops separate the compare from its branch (after hoisting-like
    /// hand-placement).
    fn loop_with_branch(iters: i64, rnd: bool, dist: usize) -> ppsim_isa::Program {
        let mut a = Asm::new();
        // data array of pseudo-random words at 0x10000
        // 4096 words of well-mixed pseudo-random data: long enough that a
        // linear predictor cannot memorize the bit sequence.
        let words: Vec<i64> = (0..4096u64)
            .map(|i| {
                let mut x = i
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0x1234_5678);
                x ^= x >> 29;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 32;
                (x & 0xff) as i64
            })
            .collect();
        a.data(ppsim_isa::DataSegment::from_words(0x10000, &words));
        a.init_gr(g(2), 0x10000);
        let top = a.new_label();
        a.movi(g(1), 0);
        a.bind(top);
        // idx = (i & 255) * 8; d = mem[base + idx]
        a.alu(ppsim_isa::AluKind::And, g(3), g(1), Operand::imm(4095));
        a.alu(ppsim_isa::AluKind::Shl, g(3), g(3), Operand::imm(3));
        a.add(g(4), g(2), g(3));
        a.ld(g(5), g(4), 0);
        if rnd {
            a.alu(ppsim_isa::AluKind::And, g(5), g(5), Operand::imm(1));
            a.cmp(CmpType::Unc, CmpRel::Ne, p(1), p(2), g(5), Operand::imm(0));
        } else {
            a.cmp(CmpType::Unc, CmpRel::Ge, p(1), p(2), g(5), Operand::imm(0)); // always true
        }
        for k in 0..dist {
            a.addi(g(10), g(10), k as i64 + 1);
        }
        let skip = a.new_label();
        a.pred(p(2)).br(skip);
        a.addi(g(11), g(11), 1);
        a.bind(skip);
        a.addi(g(1), g(1), 1);
        a.cmp(
            CmpType::Unc,
            CmpRel::Lt,
            p(3),
            p(4),
            g(1),
            Operand::imm(iters),
        );
        a.pred(p(3)).br(top);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn trace_replay_matches_inline_machine_exactly() {
        use ppsim_isa::TraceBuffer;
        use std::sync::Arc;

        let program = loop_with_branch(400, true, 2);
        let trace = Arc::new(TraceBuffer::capture(&program, 100_000).unwrap());
        assert!(trace.halted());
        for scheme in SchemeSpec::ALL {
            for predication in [PredicationModel::Cmov, PredicationModel::Selective] {
                let opts = SimOptions::new(scheme, predication).shadow(true);
                let inline = opts
                    .build_source(Machine::new(&program))
                    .unwrap()
                    .run(100_000);
                let replay = opts
                    .build_source(TraceCursor::new(Arc::clone(&trace)))
                    .unwrap()
                    .run(100_000);
                assert_eq!(inline.halted, replay.halted, "{scheme:?}/{predication:?}");
                assert_eq!(
                    inline.stats, replay.stats,
                    "replay must be stat-identical for {scheme:?}/{predication:?}"
                );
            }
        }
    }

    #[test]
    fn trace_replay_respects_commit_budget() {
        use ppsim_isa::TraceBuffer;
        use std::sync::Arc;

        let program = loop_with_branch(400, false, 0);
        // Capture covers exactly the budget; replay stops there unhalted,
        // just like the inline path would.
        let trace = Arc::new(TraceBuffer::capture(&program, 500).unwrap());
        let opts = SimOptions::new(SchemeSpec::Conventional, PredicationModel::Cmov);
        let inline = opts.build_source(Machine::new(&program)).unwrap().run(500);
        let replay = opts
            .build_source(TraceCursor::new(Arc::clone(&trace)))
            .unwrap()
            .run(500);
        assert!(!inline.halted);
        assert!(!replay.halted);
        assert_eq!(inline.stats, replay.stats);
    }

    #[test]
    fn independent_loop_ipc_approaches_width() {
        // A loop of independent movs: the I-cache stays warm after the
        // first iteration, so throughput is bounded by machine width, not
        // cold misses.
        let mut a = Asm::new();
        let top = a.new_label();
        a.movi(g(1), 0);
        a.bind(top);
        for i in 0..48u32 {
            a.movi(g((10 + (i % 50)) as u8), i as i64);
        }
        a.addi(g(1), g(1), 1);
        a.cmp(
            CmpType::Unc,
            CmpRel::Lt,
            p(1),
            p(2),
            g(1),
            Operand::imm(500),
        );
        a.pred(p(1)).br(top);
        a.halt();
        let prog = a.assemble().unwrap();
        let r = sim(&prog, SchemeSpec::Conventional).run(1_000_000);
        assert!(r.halted);
        let ipc = r.stats.ipc();
        assert!(ipc > 2.5, "independent movs should flow wide, ipc={ipc}");
        assert!(ipc <= 6.01, "cannot beat the machine width, ipc={ipc}");
    }

    #[test]
    fn dependent_chain_is_serial() {
        let mut a = Asm::new();
        for _ in 0..500 {
            a.addi(g(1), g(1), 1);
        }
        a.halt();
        let prog = a.assemble().unwrap();
        let r = sim(&prog, SchemeSpec::Conventional).run(1_000_000);
        let ipc = r.stats.ipc();
        assert!(ipc < 1.3, "a serial add chain runs ~1 IPC, got {ipc}");
    }

    #[test]
    fn biased_branch_is_learned_by_all_schemes() {
        for scheme in [
            SchemeSpec::Conventional,
            SchemeSpec::PepPa,
            SchemeSpec::Predicate,
        ] {
            let prog = loop_with_branch(2000, false, 0);
            let r = sim(&prog, scheme).run(1_000_000);
            assert!(r.halted, "{scheme:?}");
            let rate = r.stats.misprediction_rate();
            assert!(rate < 0.05, "{scheme:?}: biased branch rate={rate}");
        }
    }

    #[test]
    fn random_branch_hurts_conventional() {
        let prog = loop_with_branch(2000, true, 0);
        let r = sim(&prog, SchemeSpec::Conventional).run(1_000_000);
        let rate = r.stats.misprediction_rate();
        // The data has period 256, so a big predictor eventually learns
        // some of it, but early on it's hard; expect a clearly nonzero
        // rate.
        assert!(rate > 0.05, "random branch should mispredict, rate={rate}");
    }

    #[test]
    fn distant_compare_early_resolves_in_predicate_scheme() {
        let prog = loop_with_branch(2000, true, 120);
        let r = sim(&prog, SchemeSpec::Predicate).run(2_000_000);
        assert!(r.halted);
        let s = &r.stats;
        // Half the dynamic branches are the loop latch (compare adjacent,
        // never early-resolved); nearly all inner branches early-resolve.
        assert!(
            s.early_resolved_rate() > 0.4,
            "120 filler ops give the compare time to execute: {:?} / {:?}",
            s.early_resolved,
            s.cond_branches
        );
        // Early-resolved branches are never mispredicted; with most
        // branches early-resolved the rate collapses well below the
        // conventional predictor's on the same program.
        let conv = sim(&loop_with_branch(2000, true, 120), SchemeSpec::Conventional).run(2_000_000);
        assert!(
            s.misprediction_rate() < conv.stats.misprediction_rate(),
            "predicate {} vs conventional {}",
            s.misprediction_rate(),
            conv.stats.misprediction_rate()
        );
    }

    #[test]
    fn early_resolved_branches_never_mispredict() {
        let prog = loop_with_branch(1000, true, 120);
        let r = sim(&prog, SchemeSpec::Predicate).run(2_000_000);
        let s = &r.stats;
        // Every mispredict must come from a non-early-resolved branch.
        assert!(s.mispredicts <= s.cond_branches - s.early_resolved);
        assert_eq!(s.early_resolved_mispredicts, 0);
    }

    #[test]
    fn stage_counters_are_monotone_and_count_replays() {
        for scheme in SchemeSpec::ALL {
            let prog = loop_with_branch(500, true, 30);
            let mut s = Simulator::new(
                &prog,
                scheme,
                PredicationModel::Selective,
                CoreConfig::paper(),
            );
            let r = s.run(2_000_000);
            let st = &r.stats;
            assert!(st.fetched >= st.renamed, "{scheme:?}: {st:?}");
            assert!(st.renamed >= st.committed, "{scheme:?}");
            // Committed-path traffic: the excess over `committed` is
            // exactly the flush-replayed consumers.
            assert!(
                st.fetched - st.committed <= st.mispredicts + st.predication_flushes,
                "{scheme:?}: replays bounded by flush events"
            );
        }
    }

    #[test]
    fn oracle_final_never_mispredicts() {
        let prog = loop_with_branch(1000, true, 0);
        let mut s = crate::SimOptions::new(SchemeSpec::IdealConventional, PredicationModel::Cmov)
            .oracle_final(true)
            .build_source(Machine::new(&prog))
            .unwrap();
        let r = s.run(2_000_000);
        assert!(r.halted);
        assert!(r.stats.cond_branches > 500);
        assert_eq!(r.stats.mispredicts, 0, "oracle-exact mode cannot miss");
    }

    #[test]
    fn injected_faults_trip_the_pinned_invariants() {
        // InvertOracle: every executed branch now mispredicts.
        let prog = loop_with_branch(200, true, 0);
        let mut s = crate::SimOptions::new(SchemeSpec::IdealConventional, PredicationModel::Cmov)
            .oracle_final(true)
            .test_fault(TestFault::InvertOracle)
            .build_source(Machine::new(&prog))
            .unwrap();
        let r = s.run(2_000_000);
        assert_eq!(r.stats.mispredicts, r.stats.cond_branches);

        // InvertEarlyResolve: early-resolved branches consume a corrupted
        // guard, so the §3.2 zero-counter moves.
        let prog = loop_with_branch(200, true, 120);
        let mut s = crate::SimOptions::new(SchemeSpec::Predicate, PredicationModel::Selective)
            .test_fault(TestFault::InvertEarlyResolve)
            .build_source(Machine::new(&prog))
            .unwrap();
        let r = s.run(2_000_000);
        assert!(r.stats.early_resolved > 0);
        assert_eq!(r.stats.early_resolved_mispredicts, r.stats.early_resolved);
    }

    #[test]
    fn mispredicts_cost_cycles() {
        let biased =
            sim(&loop_with_branch(2000, false, 0), SchemeSpec::Conventional).run(1_000_000);
        let random = sim(&loop_with_branch(2000, true, 0), SchemeSpec::Conventional).run(1_000_000);
        assert!(
            random.stats.cycles > biased.stats.cycles + 1000,
            "mispredictions must show up in cycle counts: {} vs {}",
            random.stats.cycles,
            biased.stats.cycles
        );
    }

    #[test]
    fn selective_predication_cancels_confidently_false_guards() {
        // Loop where p1 is almost always false: the guarded add should be
        // cancelled at rename once confidence saturates.
        let mut a = Asm::new();
        let top = a.new_label();
        a.movi(g(1), 0);
        a.bind(top);
        a.cmp(CmpType::Unc, CmpRel::Lt, p(1), p(2), g(1), Operand::imm(0)); // p1=false
        a.pred(p(1)).addi(g(11), g(11), 1);
        a.pred(p(1)).addi(g(12), g(12), 1);
        a.addi(g(1), g(1), 1);
        a.cmp(
            CmpType::Unc,
            CmpRel::Lt,
            p(3),
            p(4),
            g(1),
            Operand::imm(2000),
        );
        a.pred(p(3)).br(top);
        a.halt();
        let prog = a.assemble().unwrap();
        let mut s = Simulator::new(
            &prog,
            SchemeSpec::Predicate,
            PredicationModel::Selective,
            CoreConfig::paper(),
        );
        let r = s.run(1_000_000);
        assert!(r.halted);
        assert!(
            r.stats.cancelled_at_rename > 1000,
            "steady false guard cancels at rename: {}",
            r.stats.cancelled_at_rename
        );
        assert_eq!(r.stats.predication_flushes, 0, "never wrong, never flushes");
    }

    #[test]
    fn wrong_confident_cancel_flushes() {
        // Guard is false for a long warm-up (confidence saturates on
        // "false"), then flips occasionally: flushes must occur.
        let mut a = Asm::new();
        let top = a.new_label();
        a.movi(g(1), 0);
        a.bind(top);
        a.alu(ppsim_isa::AluKind::And, g(5), g(1), Operand::imm(1023));
        // p1 true only when (i & 1023) == 1023.
        a.cmp(
            CmpType::Unc,
            CmpRel::Eq,
            p(1),
            p(2),
            g(5),
            Operand::imm(1023),
        );
        a.pred(p(1)).addi(g(11), g(11), 1);
        a.addi(g(1), g(1), 1);
        a.cmp(
            CmpType::Unc,
            CmpRel::Lt,
            p(3),
            p(4),
            g(1),
            Operand::imm(5000),
        );
        a.pred(p(3)).br(top);
        a.halt();
        let prog = a.assemble().unwrap();
        let mut s = Simulator::new(
            &prog,
            SchemeSpec::Predicate,
            PredicationModel::Selective,
            CoreConfig::paper(),
        );
        let r = s.run(2_000_000);
        assert!(r.halted);
        assert!(
            r.stats.predication_flushes > 0,
            "rare true guard must flush"
        );
        assert!(
            r.stats.predication_flushes <= 6,
            "only ~4 surprises exist: {}",
            r.stats.predication_flushes
        );
    }

    #[test]
    fn shadow_classification_counts_early_saves() {
        let prog = loop_with_branch(2000, true, 120);
        let mut s = SimOptions::new(SchemeSpec::Predicate, PredicationModel::Cmov)
            .shadow(true)
            .build_source(Machine::new(&prog))
            .unwrap();
        let r = s.run(2_000_000);
        assert!(r.stats.shadow_mispredicts > 0);
        assert!(r.stats.early_resolved_saves <= r.stats.shadow_mispredicts);
        assert!(
            r.stats.early_resolved_saves > 0,
            "early resolution must save some"
        );
    }

    #[test]
    fn tiny_machine_is_slower_than_paper_machine() {
        let prog = loop_with_branch(1000, false, 8);
        let big = Simulator::new(
            &prog,
            SchemeSpec::Conventional,
            PredicationModel::Cmov,
            CoreConfig::paper(),
        )
        .run(1_000_000);
        let small = Simulator::new(
            &prog,
            SchemeSpec::Conventional,
            PredicationModel::Cmov,
            CoreConfig::tiny(),
        )
        .run(1_000_000);
        assert!(
            small.stats.cycles > big.stats.cycles,
            "narrow queues cost cycles"
        );
    }

    #[test]
    fn ideal_schemes_beat_realistic_ones() {
        let prog = loop_with_branch(3000, true, 0);
        let real = sim(&prog, SchemeSpec::Conventional).run(2_000_000);
        let ideal = sim(&prog, SchemeSpec::IdealConventional).run(2_000_000);
        assert!(
            ideal.stats.misprediction_rate() <= real.stats.misprediction_rate() + 0.02,
            "ideal {} vs real {}",
            ideal.stats.misprediction_rate(),
            real.stats.misprediction_rate()
        );
    }

    #[test]
    fn commit_budget_stops_run() {
        let prog = loop_with_branch(1_000_000, false, 0);
        let r = sim(&prog, SchemeSpec::Conventional).run(5_000);
        assert!(!r.halted);
        assert!(r.stats.committed >= 5_000);
    }

    #[test]
    fn event_ring_records_stage_progression() {
        let prog = loop_with_branch(50, false, 4);
        let mut s = SimOptions::new(SchemeSpec::Predicate, PredicationModel::Cmov)
            .trace_events(64)
            .build_source(Machine::new(&prog))
            .unwrap();
        s.run(100_000);
        let ring = s.events().unwrap();
        assert_eq!(ring.len(), 64);
        assert!(ring.dropped() > 0, "a 50-iteration loop overflows 64 slots");
        let retires: Vec<_> = ring
            .events()
            .filter_map(|e| match e.kind {
                EventKind::Retire {
                    fetch,
                    rename,
                    exec,
                    commit,
                    ..
                } => Some((fetch, rename, exec, commit)),
                _ => None,
            })
            .collect();
        assert!(!retires.is_empty());
        for (fetch, rename, exec, commit) in &retires {
            assert!(fetch <= rename, "fetch before rename");
            assert!(rename < exec, "rename before execute");
            assert!(exec < commit, "execute before commit");
        }
        // Commits are in order.
        let commits: Vec<u64> = retires.iter().map(|r| r.3).collect();
        assert!(commits.windows(2).all(|w| w[0] <= w[1]));
        // Prediction events interleave with retires and render compactly.
        assert!(ring
            .events()
            .any(|e| matches!(e.kind, EventKind::PredictionMade { .. })));
        let rendered = ring.events().next().unwrap().to_string();
        assert!(rendered.contains("seq"), "{rendered}");
    }

    #[test]
    fn sampled_run_marks_the_measurement_boundary() {
        let prog = loop_with_branch(2_000, false, 4);
        let mut s = SimOptions::new(SchemeSpec::Predicate, PredicationModel::Cmov)
            .trace_events(4096)
            .build_source(Machine::new(&prog))
            .unwrap();
        s.run_sample(500, 500);
        let ring = s.events().unwrap();
        let marker: Vec<_> = ring
            .events()
            .filter(|e| matches!(e.kind, EventKind::MeasurementBegin))
            .collect();
        assert_eq!(marker.len(), 1, "exactly one warmup/measure boundary");
        // Retires before the marker are warmup, after are measured; both
        // phases must be present in the trace.
        let boundary = marker[0].cycle;
        let (warm, measured): (Vec<_>, Vec<_>) = ring
            .events()
            .filter_map(|e| match e.kind {
                EventKind::Retire { commit, .. } => Some(commit),
                _ => None,
            })
            .partition(|c| *c <= boundary);
        assert!(!warm.is_empty(), "warmup retires traced");
        assert!(!measured.is_empty(), "measured retires traced");
    }

    #[test]
    fn stall_buckets_sum_to_cycles() {
        use ppsim_obs::StallBucket;
        for scheme in SchemeSpec::ALL {
            for model in [PredicationModel::Cmov, PredicationModel::Selective] {
                let prog = loop_with_branch(400, true, 8);
                let mut s = SimOptions::new(scheme, model)
                    .build_source(Machine::new(&prog))
                    .unwrap();
                let r = s.run(1_000_000);
                assert_eq!(
                    r.stats.stall.total(),
                    r.stats.cycles,
                    "{scheme:?}/{model:?}: every cycle must land in exactly one bucket"
                );
                assert!(
                    r.stats.stall.get(StallBucket::CommitBound) > 0,
                    "{scheme:?}/{model:?}: some cycles are plain throughput"
                );
            }
        }
    }

    #[test]
    fn measured_window_keeps_the_stall_invariant() {
        use ppsim_isa::TraceBuffer;
        use std::sync::Arc;

        let program = loop_with_branch(3000, true, 8);
        let trace = Arc::new(TraceBuffer::capture(&program, 100_000).unwrap());
        for scheme in SchemeSpec::ALL {
            let opts = SimOptions::new(scheme, PredicationModel::Selective);
            let mut s = opts
                .build_source(TraceCursor::window(Arc::clone(&trace), 5_000, 4_000))
                .unwrap();
            let r = s.run_sample(1_000, 3_000);
            assert_eq!(r.stats.committed, 3_000, "{scheme:?}");
            assert_eq!(
                r.stats.stall.total(),
                r.stats.cycles,
                "{scheme:?}: the invariant must hold per measured window"
            );
            assert!(r.stats.cycles > 0, "{scheme:?}");
            assert!(
                r.stats.cycles < 100_000,
                "{scheme:?}: window cycles are relative to the warmup end"
            );
        }
    }

    #[test]
    fn warmup_statistics_are_dropped_but_training_is_kept() {
        // Measured window over a biased branch after a long warmup: the
        // warmup's branches must not appear in the counters, and the
        // predictor must arrive at the window already trained (near-zero
        // misprediction on a branch that a cold 2-bit-style counter would
        // initially miss).
        use ppsim_isa::TraceBuffer;
        use std::sync::Arc;

        let program = loop_with_branch(4000, false, 0);
        let trace = Arc::new(TraceBuffer::capture(&program, 200_000).unwrap());
        let opts = SimOptions::new(SchemeSpec::Conventional, PredicationModel::Cmov);
        let mut s = opts
            .build_source(TraceCursor::window(Arc::clone(&trace), 0, 40_000))
            .unwrap();
        let r = s.run_sample(20_000, 20_000);
        assert_eq!(r.stats.committed, 20_000);
        let full = opts
            .build_source(TraceCursor::new(Arc::clone(&trace)))
            .unwrap()
            .run(200_000);
        assert!(
            r.stats.cond_branches < full.stats.cond_branches,
            "window counts only its own branches"
        );
        assert!(
            r.stats.misprediction_rate() < 0.02,
            "warmup trained the predictor: rate={}",
            r.stats.misprediction_rate()
        );
        // The warmup's cold-start cache misses are subtracted out.
        assert!(r.stats.mem.l1d.accesses < full.stats.mem.l1d.accesses);
    }

    #[test]
    fn checkpointed_inline_sample_matches_window_replay() {
        // The two ways of reaching a sampled window — restoring a machine
        // checkpoint taken after `start` functional steps, and seeking a
        // trace cursor to record `start` — must produce identical
        // statistics for the same warmup+measure schedule.
        use ppsim_isa::{Machine, TraceBuffer};
        use std::sync::Arc;

        let program = loop_with_branch(3000, true, 4);
        let (start, warmup, measure) = (7_000u64, 2_000u64, 5_000u64);
        let trace = Arc::new(TraceBuffer::capture(&program, 100_000).unwrap());

        // Functional fast-forward + checkpoint + restore.
        let mut ff = Machine::new(&program);
        ff.run(start).unwrap();
        let ckpt = ff.checkpoint();

        for scheme in [SchemeSpec::Conventional, SchemeSpec::Predicate] {
            let opts = SimOptions::new(scheme, PredicationModel::Selective);

            let mut restored = Machine::new(&program);
            restored.restore(&ckpt);
            let inline = opts
                .build_source(restored)
                .unwrap()
                .run_sample(warmup, measure);

            let replay = opts
                .build_source(TraceCursor::window(
                    Arc::clone(&trace),
                    start,
                    warmup + measure,
                ))
                .unwrap()
                .run_sample(warmup, measure);

            assert_eq!(inline.halted, replay.halted, "{scheme:?}");
            assert_eq!(
                inline.stats, replay.stats,
                "{scheme:?}: checkpoint restore and cursor window must agree"
            );
            assert_eq!(inline.stats.committed, measure);
        }
    }

    #[test]
    fn sampled_aggregate_tracks_the_full_run() {
        // Three windows over a strongly patterned branch stream: the
        // merged estimate must land near the full run's misprediction
        // rate (the `ppsim check` sampled invariant in miniature).
        use ppsim_isa::TraceBuffer;
        use std::sync::Arc;

        let program = loop_with_branch(8000, true, 0);
        let trace = Arc::new(TraceBuffer::capture(&program, 400_000).unwrap());
        let opts = SimOptions::new(SchemeSpec::Conventional, PredicationModel::Cmov);
        let full = opts
            .build_source(TraceCursor::new(Arc::clone(&trace)))
            .unwrap()
            .run(400_000);

        let spec = crate::SampleSpec {
            skip: 5_000,
            warmup: 3_000,
            measure: 8_000,
            stride: 12_000,
            count: 3,
        };
        let mut agg = SimStats::default();
        for i in 0..spec.count {
            let r = opts
                .build_source(TraceCursor::window(
                    Arc::clone(&trace),
                    spec.window_start(i),
                    spec.warmup + spec.measure,
                ))
                .unwrap()
                .run_sample(spec.warmup, spec.measure);
            agg.merge(&r.stats);
        }
        assert_eq!(agg.committed, 3 * 8_000);
        assert_eq!(agg.stall.total(), agg.cycles);
        let err = (agg.misprediction_rate() - full.stats.misprediction_rate()).abs();
        assert!(
            err < 0.02,
            "sampled {} vs full {} (err {err})",
            agg.misprediction_rate(),
            full.stats.misprediction_rate()
        );
    }

    #[test]
    fn stats_are_consistent() {
        let prog = loop_with_branch(500, true, 4);
        let r = sim(&prog, SchemeSpec::Predicate).run(1_000_000);
        let s = &r.stats;
        assert!(s.cond_branches > 0);
        assert!(s.mispredicts <= s.cond_branches);
        assert!(s.early_resolved <= s.cond_branches);
        assert!(s.compares > 0);
        assert!(s.cycles > 0);
        assert!(s.committed > 0);
        assert!(s.mem.l1d.accesses > 0, "loads hit the cache model");
    }
}
