//! Per-instruction stage tracing ("pipeview"), for debugging and for
//! seeing the paper's mechanisms operate cycle by cycle.

use std::fmt;

use ppsim_isa::Insn;

/// What happened to one dynamic instruction.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Static slot.
    pub slot: u32,
    /// The instruction.
    pub insn: Insn,
    /// Fetch cycle.
    pub fetch: u64,
    /// Rename cycle.
    pub rename: u64,
    /// Issue cycle (equals rename+1 for rename-cancelled instructions).
    pub issue: u64,
    /// Execute-complete cycle.
    pub exec: u64,
    /// Commit cycle.
    pub commit: u64,
    /// Whether this conditional branch was early-resolved.
    pub early_resolved: bool,
    /// Whether this conditional branch (or predicated instruction)
    /// mis-speculated and triggered a flush.
    pub mispredicted: bool,
    /// Whether the selective model cancelled or unguarded it at rename.
    pub rename_disposed: bool,
}

/// A bounded recording of [`TraceEvent`]s.
#[derive(Clone, Debug, Default)]
pub struct PipeTrace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl PipeTrace {
    /// A trace keeping at most `capacity` events (oldest dropped first is
    /// *not* implemented — recording simply stops; traces are for the
    /// beginning of a region of interest).
    pub fn new(capacity: usize) -> Self {
        PipeTrace {
            events: Vec::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Records one event (drops it when full).
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events that did not fit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether the trace reached capacity.
    pub fn is_full(&self) -> bool {
        self.events.len() >= self.capacity
    }
}

impl fmt::Display for PipeTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>6} {:>5} {:>8} {:>8} {:>8} {:>8} {:>8}  {:<5} insn",
            "seq", "slot", "fetch", "rename", "issue", "exec", "commit", "flags"
        )?;
        for e in &self.events {
            let mut flags = String::new();
            if e.early_resolved {
                flags.push('E');
            }
            if e.mispredicted {
                flags.push('M');
            }
            if e.rename_disposed {
                flags.push('S');
            }
            writeln!(
                f,
                "{:>6} {:>5} {:>8} {:>8} {:>8} {:>8} {:>8}  {:<5} {}",
                e.seq, e.slot, e.fetch, e.rename, e.issue, e.exec, e.commit, flags, e.insn
            )?;
        }
        if self.dropped > 0 {
            writeln!(f, "... {} further events not recorded", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim_isa::Op;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            seq,
            slot: seq as u32,
            insn: Insn::new(Op::Nop),
            fetch: seq,
            rename: seq + 4,
            issue: seq + 5,
            exec: seq + 6,
            commit: seq + 7,
            early_resolved: seq.is_multiple_of(2),
            mispredicted: false,
            rename_disposed: false,
        }
    }

    #[test]
    fn records_up_to_capacity() {
        let mut t = PipeTrace::new(3);
        for i in 0..5 {
            t.record(ev(i));
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 2);
        assert!(t.is_full());
    }

    #[test]
    fn render_contains_stages_and_flags() {
        let mut t = PipeTrace::new(4);
        t.record(ev(0));
        t.record(TraceEvent {
            mispredicted: true,
            ..ev(1)
        });
        let s = t.to_string();
        assert!(s.contains("fetch"), "{s}");
        assert!(s.contains("nop"), "{s}");
        assert!(s.lines().any(|l| l.contains('M')), "{s}");
        assert!(s.lines().any(|l| l.contains('E')), "{s}");
    }
}
