//! # ppsim-pipeline — the eight-stage out-of-order core
//!
//! An execution-driven timing model of the machine in Table 1 of the
//! paper: 6-wide fetch/rename/commit, 256-entry ROB, 80/80/32-entry issue
//! queues, dual 64-entry load/store queues, the `ppsim-mem` hierarchy, and
//! a pluggable branch-prediction organization ([`SchemeKind`]):
//!
//! * `Conventional` — 4 KB gshare at fetch overridden by a 148 KB
//!   perceptron at rename (the baseline),
//! * `PepPa` — the 144 KB PEP-PA baseline with out-of-order
//!   predicate-register writes,
//! * `Predicate` — **the paper's scheme**: per-compare predictions stored
//!   in the predicate physical register file, consumed by branches (and,
//!   under [`PredicationModel::Selective`], by if-converted instructions)
//!   at rename, with early-resolved branches reading computed values,
//! * `Ideal*` — alias-free, perfect-history variants for the sensitivity
//!   studies.
//!
//! # Example
//!
//! ```
//! use ppsim_isa::{Asm, CmpRel, CmpType, Gr, Operand, Pr};
//! use ppsim_pipeline::{PredicationModel, SchemeKind, SimOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new();
//! let top = a.new_label();
//! a.bind(top);
//! a.addi(Gr::new(1), Gr::new(1), 1);
//! a.cmp(CmpType::Unc, CmpRel::Lt, Pr::new(1), Pr::new(2), Gr::new(1), Operand::imm(1000));
//! a.pred(Pr::new(1)).br(top);
//! a.halt();
//! let program = a.assemble()?;
//!
//! let mut sim = SimOptions::new(SchemeKind::Predicate, PredicationModel::Selective)
//!     .build_source(ppsim_isa::Machine::new(&program))?;
//! let result = sim.run(100_000);
//! assert!(result.halted);
//! assert!(result.stats.ipc() > 0.5);
//! assert_eq!(result.stats.stall.total(), result.stats.cycles);
//! # Ok(())
//! # }
//! ```

mod config;
mod core;
pub mod decode;
mod fxhash;
mod lanes;
mod options;
pub mod phases;
mod resources;
mod sample;
mod stats;

pub use crate::core::{RunResult, Simulator};
pub use config::{CoreConfig, Latencies, PredicationModel};
pub use lanes::{LaneSet, NullSource};
pub use options::{SimOptions, SimOptionsError, TestFault};
pub use phases::PhaseReport;
/// Re-exported trace-engine types: capture a program's dynamic stream
/// once ([`TraceBuffer`]) and drive any number of timing cells from it —
/// one cursor per solo cell ([`SimOptions::build_source`]) or one shared
/// pass for a whole fused lane bundle ([`LaneSet`]).
pub use ppsim_isa::{InsnSource, TraceBuffer, TraceCursor};
pub use ppsim_obs::{EventKind, EventRing, StallBreakdown, StallBucket, TraceEvent};
pub use ppsim_predictors::SchemeSpec;
/// Backwards-compatible alias for [`SchemeSpec`] (the enum moved to
/// `ppsim-predictors` so every layer shares one scheme authority).
pub use ppsim_predictors::SchemeSpec as SchemeKind;
pub use resources::{Pool, UnitSet, WidthLimiter};
pub use sample::{SampleSpec, SampleSpecError};
pub use stats::SimStats;
