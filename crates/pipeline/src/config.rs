//! Core configuration (Table 1 of the paper).

/// Functional-unit and operation latencies in cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latencies {
    /// Simple integer ALU.
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// FP add/sub/convert.
    pub fp_alu: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide.
    pub fp_div: u64,
    /// Branch resolution.
    pub branch: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            int_alu: 1,
            int_mul: 3,
            fp_alu: 4,
            fp_mul: 4,
            fp_div: 16,
            branch: 1,
        }
    }
}

/// How if-converted (predicated) instructions execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredicationModel {
    /// Conditional-move style: every predicated instruction reads its
    /// guard and the old value of its destination, always occupies an
    /// issue-queue slot and a functional unit (the resource-hungry
    /// baseline of §3.2).
    Cmov,
    /// Selective predicate prediction (§3.2 / ICS'06): confident
    /// predictions cancel (predicted-false) or unguard (predicted-true)
    /// instructions at rename; non-confident guards fall back to cmov
    /// semantics; mispredictions flush from the first consumer.
    Selective,
}

/// The machine configuration (defaults reproduce Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoreConfig {
    /// Fetch width: up to 2 bundles = 6 instructions.
    pub fetch_width: usize,
    /// Rename/dispatch width.
    pub rename_width: usize,
    /// Commit width.
    pub commit_width: usize,
    /// Reorder buffer entries.
    pub rob_entries: usize,
    /// Integer issue-queue entries.
    pub iq_int: usize,
    /// Floating-point issue-queue entries.
    pub iq_fp: usize,
    /// Branch issue-queue entries.
    pub iq_branch: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Integer physical registers.
    pub phys_int: usize,
    /// FP physical registers.
    pub phys_fp: usize,
    /// Predicate physical registers (PPRF entries).
    pub phys_pred: usize,
    /// Integer ALUs.
    pub int_units: usize,
    /// FP units.
    pub fp_units: usize,
    /// Memory ports.
    pub mem_ports: usize,
    /// Branch units.
    pub branch_units: usize,
    /// Front-end depth in cycles from fetch to rename (the 8-stage
    /// pipeline spends 4 cycles before rename: F1 F2 D1 D2).
    pub front_stages: u64,
    /// Cycles from a branch misprediction resolution to useful fetch
    /// (Table 1: 10).
    pub mispredict_penalty: u64,
    /// Front-end bubble when the second-level prediction overrides the
    /// first at rename (two-level scheme re-steer).
    pub override_bubble: u64,
    /// Operation latencies.
    pub latencies: Latencies,
    /// Repair wrong speculative history bits when the producing compare
    /// executes (§3.3 recovery). Disable to measure the cost of permanent
    /// global-history corruption (an ablation; the paper's design repairs).
    pub history_repair: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            fetch_width: 6,
            rename_width: 6,
            commit_width: 6,
            rob_entries: 256,
            iq_int: 80,
            iq_fp: 80,
            iq_branch: 32,
            lq_entries: 64,
            sq_entries: 64,
            phys_int: 256,
            phys_fp: 256,
            phys_pred: 128,
            int_units: 4,
            fp_units: 2,
            mem_ports: 2,
            branch_units: 2,
            front_stages: 4,
            mispredict_penalty: 10,
            override_bubble: 3,
            latencies: Latencies::default(),
            history_repair: true,
        }
    }
}

impl CoreConfig {
    /// The paper's Table 1 machine (same as `Default`).
    pub fn paper() -> Self {
        CoreConfig::default()
    }

    /// A narrow machine for stress tests (tiny queues expose resource
    /// stalls quickly).
    pub fn tiny() -> Self {
        CoreConfig {
            fetch_width: 2,
            rename_width: 2,
            commit_width: 2,
            rob_entries: 8,
            iq_int: 4,
            iq_fp: 4,
            iq_branch: 4,
            lq_entries: 4,
            sq_entries: 4,
            phys_int: 160,
            phys_fp: 160,
            phys_pred: 80,
            int_units: 1,
            fp_units: 1,
            mem_ports: 1,
            branch_units: 1,
            ..CoreConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table1() {
        let c = CoreConfig::paper();
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.rob_entries, 256);
        assert_eq!(c.iq_int, 80);
        assert_eq!(c.iq_fp, 80);
        assert_eq!(c.iq_branch, 32);
        assert_eq!(c.lq_entries, 64);
        assert_eq!(c.sq_entries, 64);
        assert_eq!(c.mispredict_penalty, 10);
    }
}
