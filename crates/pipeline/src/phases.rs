//! In-tree phase profiler for the per-record hot loop.
//!
//! The container has no sampling profiler, so attribution of
//! `process()` time is measured directly: when a simulator is built with
//! [`crate::SimOptions::profile_phases`], the record loop reads a
//! monotonic timestamp at each section boundary and accumulates the
//! deltas into five buckets — fetch, rename, predict, execute, commit.
//! Consecutive laps telescope, so the bucket sum equals the measured
//! wall time spent inside `process()` *exactly* (timestamp-read overhead
//! is attributed to the section it ends, never lost).
//!
//! The instrumentation is monomorphized behind a `const PROFILING: bool`
//! parameter of the record loop: a simulator built without the option
//! runs code containing no timestamp reads and no accumulator — the
//! profiler is zero-cost when off, so measurement runs and profiled runs
//! produce bit-identical statistics (pinned by tests).

/// Number of attributed sections.
pub const COUNT: usize = 5;

/// Section names, indexed by the `PHASE_*` constants.
pub const NAMES: [&str; COUNT] = ["fetch", "rename", "predict", "exec", "commit"];

/// Fetch: width booking and I-cache access.
pub const FETCH: usize = 0;
/// Rename: width booking and the structural resource gate.
pub const RENAME: usize = 1;
/// Predict: first-level lookup, compare predictions, final direction
/// selection and override re-steer.
pub const PREDICT: usize = 2;
/// Execute: dependencies, issue, functional units, memory access,
/// flush verification, branch resolution/training and writeback.
pub const EXEC: usize = 3;
/// Commit: in-order retirement, stall attribution, store commit,
/// resource holds, statistics and event flush.
pub const COMMIT: usize = 4;

/// The per-simulator accumulator (heap-boxed; only profiled runs carry
/// one).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct PhaseAcc {
    pub(crate) nanos: [u64; COUNT],
    pub(crate) records: u64,
}

/// Accumulated `process()` time attribution for one simulator run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseReport {
    /// Nanoseconds attributed to each section (see [`NAMES`]).
    pub nanos: [u64; COUNT],
    /// Records processed while profiling.
    pub records: u64,
}

impl PhaseReport {
    /// Total measured time inside `process()` — exactly the bucket sum
    /// (laps telescope).
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Merges another report into this one (fused lanes aggregate).
    pub fn merge(&mut self, other: &PhaseReport) {
        for (a, b) in self.nanos.iter_mut().zip(other.nanos) {
            *a += b;
        }
        self.records += other.records;
    }
}

impl From<PhaseAcc> for PhaseReport {
    fn from(acc: PhaseAcc) -> Self {
        PhaseReport {
            nanos: acc.nanos,
            records: acc.records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let mut a = PhaseReport {
            nanos: [1, 2, 3, 4, 5],
            records: 10,
        };
        assert_eq!(a.total_nanos(), 15);
        a.merge(&PhaseReport {
            nanos: [5, 4, 3, 2, 1],
            records: 7,
        });
        assert_eq!(a.nanos, [6; COUNT]);
        assert_eq!(a.records, 17);
        assert_eq!(NAMES.len(), COUNT);
    }
}
