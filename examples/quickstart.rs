//! Quickstart: assemble a small predicated program, run it functionally,
//! then simulate it on the Table-1 machine under the paper's predicate
//! prediction scheme.
//!
//! Run with: `cargo run --release --example quickstart`

use ppsim::isa::{Asm, CmpRel, CmpType, DataSegment, Gr, Machine, Operand, Pr};
use ppsim::pipeline::{CoreConfig, PredicationModel, SchemeKind, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop summing the positive elements of an array, written in the
    // compare-and-branch style of the target ISA.
    let data: Vec<i64> = (0..256).map(|i| (i * 37 % 101) - 50).collect();
    let (base, n) = (0x1_0000u64, data.len() as i64);

    let mut a = Asm::new();
    a.data(DataSegment::from_words(base, &data));
    a.init_gr(Gr::new(2), base as i64);
    let (top, skip) = (a.new_label(), a.new_label());
    a.movi(Gr::new(1), 0); // i
    a.movi(Gr::new(10), 0); // sum
    a.bind(top);
    a.alu(
        ppsim::isa::AluKind::Shl,
        Gr::new(3),
        Gr::new(1),
        Operand::imm(3),
    );
    a.add(Gr::new(4), Gr::new(2), Gr::new(3));
    a.ld(Gr::new(5), Gr::new(4), 0);
    // p1 = element > 0, p2 = !p1 — a compare produces two predicates.
    a.cmp(
        CmpType::Unc,
        CmpRel::Gt,
        Pr::new(1),
        Pr::new(2),
        Gr::new(5),
        Operand::imm(0),
    );
    a.pred(Pr::new(2)).br(skip); // skip the add when not positive
    a.add(Gr::new(10), Gr::new(10), Gr::new(5));
    a.bind(skip);
    a.addi(Gr::new(1), Gr::new(1), 1);
    a.cmp(
        CmpType::Unc,
        CmpRel::Lt,
        Pr::new(3),
        Pr::new(4),
        Gr::new(1),
        Operand::imm(n),
    );
    a.pred(Pr::new(3)).br(top);
    a.halt();
    let program = a.assemble()?;

    // 1. Functional execution: the architectural answer.
    let mut m = Machine::new(&program);
    m.run(1_000_000)?;
    let expected: i64 = data.iter().filter(|&&x| x > 0).sum();
    println!(
        "functional result: sum = {} (expected {})",
        m.gr(Gr::new(10)),
        expected
    );
    assert_eq!(m.gr(Gr::new(10)), expected);

    // 2. Timing simulation with the paper's predicate predictor.
    let mut sim = Simulator::new(
        &program,
        SchemeKind::Predicate,
        PredicationModel::Selective,
        CoreConfig::paper(),
    );
    let r = sim.run(1_000_000);
    let s = &r.stats;
    println!(
        "simulated: {} instructions in {} cycles (IPC {:.2})",
        s.committed,
        s.cycles,
        s.ipc()
    );
    println!(
        "branches: {} conditional, {:.2}% mispredicted, {:.1}% early-resolved",
        s.cond_branches,
        s.misprediction_rate() * 100.0,
        s.early_resolved_rate() * 100.0
    );
    println!(
        "memory: {} L1D accesses ({:.1}% misses)",
        s.mem.l1d.accesses,
        s.mem.l1d.miss_ratio() * 100.0
    );
    Ok(())
}
