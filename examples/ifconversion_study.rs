//! The paper's Figure 1, end to end: build a nested hammock whose region
//! branch correlates with two feeder conditions, if-convert it, and watch
//! where the correlation information lives before and after.
//!
//! Run with: `cargo run --release --example ifconversion_study`

use ppsim::compiler::ifconvert::{if_convert, IfConvertConfig};
use ppsim::compiler::lower::lower;
use ppsim::compiler::profile::profile_run;
use ppsim::compiler::workloads::{
    build_module, KernelKind, KernelSpec, WorkloadClass, WorkloadSpec,
};
use ppsim::pipeline::{CoreConfig, PredicationModel, SchemeKind, Simulator};

fn main() {
    // A workload dominated by one Figure-1 family: two hard feeder
    // branches plus a region branch computing their AND.
    let spec = WorkloadSpec {
        name: "figure1",
        class: WorkloadClass::Int,
        seed: 2007,
        trips: i64::MAX / 2,
        array_words: 4096,
        kernels: vec![KernelSpec {
            kind: KernelKind::Correlated,
            filler: 12,
        }],
    };

    let mut module = build_module(&spec);
    let plain = lower(&module, true).unwrap();
    println!(
        "=== original code: {} conditional branches ===",
        module.cfg.cond_branch_count()
    );

    let profile = profile_run(&plain, 200_000).unwrap();
    let stats = if_convert(&mut module.cfg, &profile, &IfConvertConfig::default());
    let converted = lower(&module, true).unwrap();
    println!(
        "=== after if-conversion: {} converted, {} conditional branches remain ===",
        stats.converted,
        module.cfg.cond_branch_count()
    );
    println!("{}", converted.program.listing());

    println!("The feeder branches are gone, but their compares remain — and only a");
    println!("predictor that observes *compare* outcomes can still predict the region branch:\n");

    for (label, program) in [
        ("original", &plain.program),
        ("if-converted", &converted.program),
    ] {
        for scheme in [SchemeKind::Conventional, SchemeKind::Predicate] {
            let mut sim = Simulator::new(
                program,
                scheme,
                PredicationModel::Selective,
                CoreConfig::paper(),
            );
            let s = sim.run(400_000).stats;
            println!(
                "  {label:13} + {:13}: misprediction rate {:5.2}%  (IPC {:.2})",
                scheme.name(),
                s.misprediction_rate() * 100.0,
                s.ipc()
            );
        }
    }
    println!("\nOn the original code both predictors see the feeder outcomes in their");
    println!("global history. On the if-converted code the conventional predictor has");
    println!("lost them; the predicate predictor keeps the correlation (paper §3.1).");
}
