//! Runs every prediction scheme on one benchmark (both binary sets) and
//! prints a side-by-side comparison.
//!
//! Run with: `cargo run --release --example predictor_shootout [benchmark]`

use ppsim::compiler::{compile, CompileOptions};
use ppsim::core::Table;
use ppsim::pipeline::{CoreConfig, PredicationModel, SchemeKind, Simulator};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "crafty".to_string());
    let spec = ppsim::compiler::spec2000_suite()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"));

    let plain = compile(&spec, &CompileOptions::no_ifconv()).unwrap();
    let ifconv = compile(&spec, &CompileOptions::with_ifconv()).unwrap();

    let schemes = [
        SchemeKind::PepPa,
        SchemeKind::Conventional,
        SchemeKind::Predicate,
        SchemeKind::IdealConventional,
        SchemeKind::IdealPredicate,
    ];

    let mut t = Table::new(
        format!("Predictor shootout on '{name}' (500k committed instructions)"),
        &["scheme", "binary", "misp%", "early-resolved%", "IPC"],
    );
    for (label, program) in [("plain", &plain.program), ("if-conv", &ifconv.program)] {
        for scheme in schemes {
            let model = if scheme.is_predicate() {
                PredicationModel::Selective
            } else {
                PredicationModel::Cmov
            };
            let mut sim = Simulator::new(program, scheme, model, CoreConfig::paper());
            let s = sim.run(500_000).stats;
            t.row(vec![
                scheme.name().to_string(),
                label.to_string(),
                format!("{:.2}", s.misprediction_rate() * 100.0),
                format!("{:.2}", s.early_resolved_rate() * 100.0),
                format!("{:.2}", s.ipc()),
            ]);
        }
    }
    println!("{t}");
    println!("Things to look for (the paper's story):");
    println!("  * predicate ≤ conventional on both binaries; the gap widens after if-conversion,");
    println!("  * PEP-PA trails both on an out-of-order core (stale predicate selectors),");
    println!("  * early-resolved% is nonzero only for the predicate schemes,");
    println!("  * the ideal variants bound how much aliasing and history corruption cost.");
}
