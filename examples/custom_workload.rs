//! Build your own benchmark: compose kernels into a `WorkloadSpec`, compile
//! it both ways and measure how each design choice moves the numbers.
//!
//! Run with: `cargo run --release --example custom_workload`

use ppsim::compiler::workloads::{KernelKind, KernelSpec, WorkloadClass, WorkloadSpec};
use ppsim::compiler::{compile, CompileOptions};
use ppsim::core::Table;
use ppsim::pipeline::{CoreConfig, PredicationModel, SchemeKind, Simulator};

fn k(kind: KernelKind, filler: u8) -> KernelSpec {
    KernelSpec { kind, filler }
}

fn measure(spec: &WorkloadSpec, ifconv: bool, scheme: SchemeKind) -> (f64, f64, f64) {
    let opts = if ifconv {
        CompileOptions::with_ifconv()
    } else {
        CompileOptions::no_ifconv()
    };
    let compiled = compile(spec, &opts).unwrap();
    let mut sim = Simulator::new(
        &compiled.program,
        scheme,
        PredicationModel::Selective,
        CoreConfig::paper(),
    );
    let s = sim.run(300_000).stats;
    (
        s.misprediction_rate() * 100.0,
        s.early_resolved_rate() * 100.0,
        s.ipc(),
    )
}

fn main() {
    // Three custom workloads that isolate one effect each.
    let workloads = vec![
        (
            "early-resolve-heavy",
            WorkloadSpec {
                name: "custom-early",
                class: WorkloadClass::Int,
                seed: 1,
                trips: i64::MAX / 2,
                array_words: 4096,
                kernels: vec![
                    k(KernelKind::HardRegion, 96),
                    k(KernelKind::InnerLoop { trips: 4 }, 0),
                ],
            },
        ),
        (
            "correlation-heavy",
            WorkloadSpec {
                name: "custom-corr",
                class: WorkloadClass::Int,
                seed: 2,
                trips: i64::MAX / 2,
                array_words: 4096,
                kernels: vec![k(KernelKind::Correlated, 12), k(KernelKind::Correlated, 12)],
            },
        ),
        (
            "aliasing-stress",
            WorkloadSpec {
                name: "custom-alias",
                class: WorkloadClass::Int,
                seed: 3,
                trips: i64::MAX / 2,
                array_words: 1024,
                kernels: (0..10)
                    .map(|i| k(KernelKind::Biased { pct: 52 + 4 * i }, 2))
                    .collect(),
            },
        ),
    ];

    let mut t = Table::new(
        "Custom workloads: conventional vs predicate predictor",
        &[
            "workload",
            "binary",
            "conv misp%",
            "pred misp%",
            "pred early%",
            "pred IPC",
        ],
    );
    for (label, spec) in &workloads {
        for ifconv in [false, true] {
            let (conv_rate, _, _) = measure(spec, ifconv, SchemeKind::Conventional);
            let (pred_rate, early, ipc) = measure(spec, ifconv, SchemeKind::Predicate);
            t.row(vec![
                label.to_string(),
                if ifconv { "if-conv" } else { "plain" }.to_string(),
                format!("{conv_rate:.2}"),
                format!("{pred_rate:.2}"),
                format!("{early:.2}"),
                format!("{ipc:.2}"),
            ]);
        }
    }
    println!("{t}");
    println!("Try editing the kernel mixes above: `filler` controls the compare-to-branch");
    println!("scheduling distance (early resolution), `Correlated` adds Figure-1 families,");
    println!("and many marginal `Biased` sites stress the predictor's table capacity.");
}
