//! # ppsim — umbrella crate
//!
//! Re-exports the whole workspace behind one dependency. See the individual
//! crates for details:
//!
//! * [`isa`] — the predicated compare-and-branch instruction set and
//!   functional emulator,
//! * [`compiler`] — CFG IR, if-conversion and the synthetic SPEC2000-like
//!   workload suite,
//! * [`predictors`] — gshare / perceptron / PEP-PA baselines and the
//!   paper's predicate perceptron predictor,
//! * [`mem`] — the cache/TLB/memory hierarchy of Table 1,
//! * [`pipeline`] — the 8-stage out-of-order core,
//! * [`runner`] — the parallel, cache-aware experiment execution engine,
//! * [`core`] — configuration, statistics and the experiment harness that
//!   regenerates every table and figure of the paper.

pub use ppsim_compiler as compiler;
pub use ppsim_core as core;
pub use ppsim_isa as isa;
pub use ppsim_mem as mem;
pub use ppsim_pipeline as pipeline;
pub use ppsim_predictors as predictors;
pub use ppsim_runner as runner;
