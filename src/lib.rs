//! # ppsim — umbrella crate
//!
//! Re-exports the whole workspace behind one dependency. See the individual
//! crates for details:
//!
//! * [`isa`] — the predicated compare-and-branch instruction set and
//!   functional emulator,
//! * [`compiler`] — CFG IR, if-conversion and the synthetic SPEC2000-like
//!   workload suite,
//! * [`predictors`] — gshare / perceptron / PEP-PA baselines and the
//!   paper's predicate perceptron predictor,
//! * [`mem`] — the cache/TLB/memory hierarchy of Table 1,
//! * [`pipeline`] — the 8-stage out-of-order core,
//! * [`runner`] — the parallel, cache-aware experiment execution engine,
//! * [`obs`] — the observability layer: metric registry, stall
//!   attribution, event tracing,
//! * [`check`] — the differential cosimulation oracle: fuzzes the timing
//!   model against the architectural emulator and minimizes divergences,
//! * [`serve`] — the persistent experiment service: a daemon with shared
//!   warm state, request dedup and streaming progress over NDJSON,
//! * [`core`] — configuration, statistics and the experiment harness that
//!   regenerates every table and figure of the paper.
//!
//! Most programs only need the [`prelude`]:
//!
//! ```
//! use ppsim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = ppsim::isa::Asm::new();
//! a.halt();
//! let program = a.assemble()?;
//! let mut sim = SimOptions::new(SchemeSpec::Predicate, PredicationModel::Selective)
//!     .trace_events(64)
//!     .build_source(ppsim::isa::Machine::new(&program))?;
//! let result = sim.run(1_000);
//! assert_eq!(result.stats.stall.total(), result.stats.cycles);
//! # Ok(())
//! # }
//! ```

pub use ppsim_check as check;
pub use ppsim_compiler as compiler;
pub use ppsim_core as core;
pub use ppsim_isa as isa;
pub use ppsim_mem as mem;
pub use ppsim_obs as obs;
pub use ppsim_pipeline as pipeline;
pub use ppsim_predictors as predictors;
pub use ppsim_runner as runner;
pub use ppsim_serve as serve;

/// The names almost every ppsim program touches: simulator construction,
/// scheme selection, statistics/metrics, stall attribution, and the
/// experiment-session plumbing.
pub mod prelude {
    pub use ppsim_core::{setup, ExperimentConfig, Job, JobResult, Runner, RunnerOptions, Session};
    pub use ppsim_obs::{EventRing, MetricSet, StallBreakdown, StallBucket, TraceEvent};
    pub use ppsim_pipeline::{
        CoreConfig, PredicationModel, SimOptions, SimOptionsError, SimStats, Simulator,
    };
    pub use ppsim_predictors::SchemeSpec;
}
