//! `ppsim` — command-line front end for the simulator.
//!
//! ```text
//! ppsim run <file.s> [--scheme S] [--commits N] [--trace-events N] [--tiny]
//! ppsim compile <benchmark> [--ifconv] [--listing]
//! ppsim bench [benchmark] [--only a,b] [--commits N] [--json P] [--sample [SPEC]]
//! ppsim suite [--jobs N] [--no-cache] [--no-replay] [--no-fuse] [--cache-dir P] [--json P] [--commits N] [--only a,b] [--sample [SPEC]]
//! ppsim check [--seed S] [--iters N] [--fault F] [--dump DIR] [--jobs N] [--no-cache] [--sample-epsilon E]
//! ppsim serve [--addr A] [--jobs N] [--max-clients N] [--cache-dir P] [--cache-max-bytes B]
//! ppsim submit [request.json|-] [--addr A] [--raw PATH] [--quiet]
//! ppsim cache stats|clear [--cache-dir P]
//! ppsim list
//! ```
//!
//! `run` executes a hand-written assembly file (the syntax printed by the
//! disassembler; see `ppsim::isa::parse_program`), `compile` builds one of
//! the 22 synthetic benchmarks and prints its listing or statistics,
//! `bench` measures the simulator's own throughput — every fig-6a cell
//! timed through both the inline machine and the trace-replay engine,
//! with the artifact written to `BENCH_sim.json` (or, with `--sample`,
//! every cell run full-length *and* through the Pinpoint-style sampled
//! path, reporting misprediction error and wall-clock speedup) — `suite`
//! regenerates the paper's full evaluation through the parallel runner
//! (with `--sample`, through checkpointed sample windows), `check`
//! fuzzes the timing model against the architectural emulator (the
//! differential cosimulation oracle; `--sample-epsilon` adds the
//! sampled-simulation invariants), `serve` runs the persistent
//! experiment daemon (shared warm state, request dedup, streaming
//! progress over NDJSON), `submit` is its scriptable client (reads
//! request lines from a file or stdin), `cache` inspects or clears the
//! on-disk result cache, and `list` prints the benchmark suite. `SPEC`
//! is `skip:warmup:measure:stride:count`; a bare `--sample` uses the
//! default schedule.

use std::process::ExitCode;

use ppsim::check::{run_check, CheckOptions};
use ppsim::compiler::{compile, CompileOptions};
use ppsim::core::{
    experiments, simbench, DiskCache, ExperimentConfig, Json, Runner, RunnerOptions, SampleSpec,
    Table,
};
use ppsim::isa::{parse_program, Program};
use ppsim::pipeline::TestFault;
use ppsim::prelude::*;
use ppsim::serve::{install_sigint_handler, submit, ServeOptions, Server, SubmitOptions};

const SCHEMES: &str = "conventional|pep-pa|predicate|ideal-conventional|ideal-predicate";
const FAULTS: &str = "invert-oracle|invert-early-resolve|share-ghr";

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  ppsim run <file.s> [--scheme {SCHEMES}] [--commits N] [--trace-events N] [--tiny]\n  ppsim compile <benchmark> [--ifconv] [--listing]\n  ppsim bench [benchmark] [--only a,b] [--commits N] [--json PATH] [--sample [SPEC]]\n  ppsim suite [--jobs N] [--no-cache] [--no-replay] [--no-fuse] [--cache-dir PATH] [--json PATH] [--commits N] [--only a,b] [--sample [SPEC]]\n  ppsim check [--seed S] [--iters N] [--fault {FAULTS}] [--dump DIR] [--jobs N] [--no-cache] [--cache-dir PATH] [--sample-epsilon E]\n  ppsim serve [--addr A] [--jobs N] [--max-clients N] [--cache-dir PATH] [--cache-max-bytes B]\n  ppsim submit [request.json|-] [--addr A] [--raw PATH] [--quiet]\n  ppsim cache stats|clear [--cache-dir PATH]\n  ppsim list\n(SPEC = skip:warmup:measure:stride:count; bare --sample = {})",
        SampleSpec::default_spec().canon()
    );
    ExitCode::FAILURE
}

struct Flags {
    args: Vec<String>,
}

impl Flags {
    fn value_of(&self, flag: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }
}

fn simulate(program: &Program, scheme: SchemeSpec, commits: u64, trace_events: usize, tiny: bool) {
    let core = if tiny {
        CoreConfig::tiny()
    } else {
        CoreConfig::paper()
    };
    let mut sim = SimOptions::new(scheme, PredicationModel::Selective)
        .core(core)
        .trace_events(trace_events)
        .build_source(ppsim::isa::Machine::new(program))
        .expect("no overrides supplied");
    let r = sim.run(commits);
    let s = &r.stats;
    if let Some(ring) = sim.events() {
        if ring.dropped() > 0 {
            println!("... {} earlier events dropped ...", ring.dropped());
        }
        for e in ring.events() {
            println!("{e}");
        }
    }
    println!(
        "{}: {} committed in {} cycles (IPC {:.3}){}",
        scheme.name(),
        s.committed,
        s.cycles,
        s.ipc(),
        if r.halted { ", halted" } else { "" }
    );
    println!(
        "  branches: {} conditional, {} mispredicted ({:.2}%), {:.2}% early-resolved",
        s.cond_branches,
        s.mispredicts,
        s.misprediction_rate() * 100.0,
        s.early_resolved_rate() * 100.0
    );
    println!(
        "  predication: {} nullified, {} cancelled, {} unguarded, {} flushes",
        s.nullified, s.cancelled_at_rename, s.unguarded_at_rename, s.predication_flushes
    );
    println!(
        "  memory: L1D {:.1}% miss, L2 {:.1}% miss, {} ITLB misses",
        s.mem.l1d.miss_ratio() * 100.0,
        s.mem.l2.miss_ratio() * 100.0,
        s.mem.itlb.1
    );
    let total = s.stall.total().max(1) as f64;
    println!(
        "  stalls: {}",
        StallBucket::ALL
            .iter()
            .map(|&b| format!("{} {:.1}%", b.name(), s.stall.get(b) as f64 / total * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    );
}

/// Parses `--sample [SPEC]`: absent → `None`, bare or `default` → the
/// default schedule, otherwise `skip:warmup:measure:stride:count`.
fn sample_flag(flags: &Flags) -> Result<Option<SampleSpec>, String> {
    if !flags.has("--sample") {
        return Ok(None);
    }
    match flags.value_of("--sample").filter(|v| !v.starts_with("--")) {
        None | Some("default") => Ok(Some(SampleSpec::default_spec())),
        Some(v) => SampleSpec::parse(v).map(Some).map_err(|e| e.to_string()),
    }
}

fn find_benchmark(name: &str) -> Option<ppsim::compiler::WorkloadSpec> {
    ppsim::compiler::spec2000_suite()
        .into_iter()
        .find(|s| s.name == name)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };
    let flags = Flags {
        args: args[1..].to_vec(),
    };
    let commits: u64 = flags
        .value_of("--commits")
        .and_then(|v| v.parse().ok())
        .unwrap_or(500_000);

    match cmd.as_str() {
        "run" => {
            let Some(path) = flags.args.first().filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let program = match parse_program(&source) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let scheme = match flags.value_of("--scheme") {
                None => SchemeSpec::Predicate,
                Some(s) => match SchemeSpec::parse(s) {
                    Some(k) => k,
                    None => {
                        eprintln!("unknown scheme `{s}` (expected {SCHEMES})");
                        return ExitCode::FAILURE;
                    }
                },
            };
            // `--trace` kept as an alias for one release.
            let trace_events = flags
                .value_of("--trace-events")
                .or_else(|| flags.value_of("--trace"))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            simulate(&program, scheme, commits, trace_events, flags.has("--tiny"));
            ExitCode::SUCCESS
        }
        "compile" => {
            let Some(name) = flags.args.first().filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            let Some(spec) = find_benchmark(name) else {
                eprintln!("unknown benchmark `{name}` (try `ppsim suite`)");
                return ExitCode::FAILURE;
            };
            let opts = if flags.has("--ifconv") {
                CompileOptions::with_ifconv()
            } else {
                CompileOptions::no_ifconv()
            };
            let compiled = compile(&spec, &opts).expect("suite benchmarks compile");
            if flags.has("--listing") {
                print!("{}", compiled.program.listing());
            }
            eprintln!(
                "{name}: {} instructions, {} conditional branches, {} compares{}",
                compiled.program.len(),
                compiled.program.count_insns(|i| i.is_cond_branch()),
                compiled.program.count_insns(|i| i.is_cmp()),
                compiled
                    .ifconvert
                    .map(|s| format!(", {} branches if-converted", s.converted))
                    .unwrap_or_default()
            );
            ExitCode::SUCCESS
        }
        "bench" => {
            // Simulator-throughput benchmark: every fig-6a cell timed
            // through the inline machine AND the trace-replay engine.
            // Exit code 1 if any cell's statistics diverge between the
            // two paths (the bit-identity guarantee the replay engine
            // rests on).
            let mut cfg = simbench::BenchConfig {
                commits,
                ..simbench::BenchConfig::default()
            };
            if let Some(name) = flags.args.first().filter(|a| !a.starts_with("--")) {
                if find_benchmark(name).is_none() {
                    eprintln!("unknown benchmark `{name}` (try `ppsim list`)");
                    return ExitCode::FAILURE;
                }
                cfg.only = vec![name.clone()];
            }
            if let Some(v) = flags.value_of("--only") {
                cfg.only = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            match sample_flag(&flags) {
                Err(e) => {
                    eprintln!("bench: {e}");
                    return ExitCode::FAILURE;
                }
                Ok(Some(spec)) => {
                    // Sampled-vs-full comparison: how much accuracy the
                    // schedule gives up and how much wall time it saves.
                    let report = simbench::run_sampled(&cfg, spec);
                    let path = flags.value_of("--json").unwrap_or("BENCH_sample.json");
                    if let Err(e) = std::fs::write(path, format!("{}\n", report.to_json())) {
                        eprintln!("bench: failed to write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("bench: wrote {path}");
                    println!("bench: {}", report.summary());
                    return ExitCode::SUCCESS;
                }
                Ok(None) => {}
            }
            let report = simbench::run(&cfg);
            let path = flags.value_of("--json").unwrap_or("BENCH_sim.json");
            if let Err(e) = std::fs::write(path, format!("{}\n", report.to_json())) {
                eprintln!("bench: failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("bench: wrote {path}");
            println!("bench: {}", report.summary());
            if report.reports_identical() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "suite" => {
            // Full paper evaluation through the parallel, cache-aware
            // runner. The stdout report is deterministic — identical for
            // any --jobs value and cache state; telemetry goes to stderr
            // and the optional --json artifact.
            let (opts, rest) = match RunnerOptions::from_args(&flags.args) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("suite: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let rest_flags = Flags { args: rest };
            let mut cfg = ExperimentConfig::from_env();
            if let Some(v) = rest_flags.value_of("--commits") {
                match v.parse() {
                    Ok(n) => cfg.commits = n,
                    Err(_) => {
                        eprintln!("suite: bad --commits value `{v}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Some(v) = rest_flags.value_of("--only") {
                cfg.only = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            match sample_flag(&rest_flags) {
                Err(e) => {
                    eprintln!("suite: {e}");
                    return ExitCode::FAILURE;
                }
                Ok(Some(spec)) => cfg.sample = Some(spec),
                Ok(None) => {}
            }
            let runner = Runner::new(opts);
            // One deduplicated grid pass feeds both the text report and
            // the --json artifact.
            let results = experiments::full_results(&runner, &cfg);
            print!("{}", results.report_text(&cfg));
            if let Some(path) = rest_flags.value_of("--json") {
                // Telemetry sits beside (not inside) the deterministic
                // `data` object: stripping it yields byte-identical
                // artifacts across cache states and worker counts.
                let doc = Json::obj()
                    .field("experiment", "suite")
                    .field("commits", cfg.commits)
                    .field("data", results.report_json(&cfg))
                    .field("telemetry", runner.telemetry().to_json());
                if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                    eprintln!("suite: failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("suite: wrote {path}");
            }
            eprintln!("suite: {}", runner.telemetry().summary());
            ExitCode::SUCCESS
        }
        "check" => {
            // Differential cosimulation: fuzz the timing model against
            // the architectural emulator across every scheme ×
            // predication cell. Exit code 1 on any divergence.
            let (ropts, rest) = match RunnerOptions::from_args(&flags.args) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("check: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let rest_flags = Flags { args: rest };
            let parse_u64 = |v: &str| -> Option<u64> {
                match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(h) => u64::from_str_radix(h, 16).ok(),
                    None => v.parse().ok(),
                }
            };
            let mut opts = CheckOptions {
                jobs: ropts.jobs,
                use_cache: ropts.cache,
                cache_dir: ropts.cache_dir.map(|d| d.join("check")),
                dump_dir: Some(std::path::PathBuf::from(
                    rest_flags.value_of("--dump").unwrap_or("check-failures"),
                )),
                ..CheckOptions::default()
            };
            if let Some(v) = rest_flags.value_of("--seed") {
                match parse_u64(v) {
                    Some(s) => opts.seed = s,
                    None => {
                        eprintln!("check: bad --seed value `{v}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Some(v) = rest_flags.value_of("--iters") {
                match v.parse() {
                    Ok(n) => opts.iters = n,
                    Err(_) => {
                        eprintln!("check: bad --iters value `{v}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Some(v) = rest_flags.value_of("--fault") {
                opts.fault = match v {
                    "invert-oracle" => Some(TestFault::InvertOracle),
                    "invert-early-resolve" => Some(TestFault::InvertEarlyResolve),
                    "share-ghr" => Some(TestFault::ShareGhr),
                    other => {
                        eprintln!("check: unknown --fault `{other}` (expected {FAULTS})");
                        return ExitCode::FAILURE;
                    }
                };
            }
            if let Some(v) = rest_flags.value_of("--sample-epsilon") {
                match v.parse::<f64>() {
                    Ok(e) if e.is_finite() && e >= 0.0 => opts.sample_epsilon = Some(e),
                    _ => {
                        eprintln!("check: bad --sample-epsilon value `{v}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let report = run_check(&opts);
            if !report.passed() {
                print!("{}", report.table());
                for f in &report.findings {
                    if let Some(p) = &f.repro_path {
                        eprintln!("check: repro written to {}", p.display());
                    }
                }
            }
            println!("check: {}", report.summary());
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "serve" => {
            // The persistent experiment daemon: one warm runner for the
            // process lifetime, NDJSON requests over TCP, graceful
            // drain on SIGINT or a `shutdown` request.
            let (ropts, rest) = match RunnerOptions::from_args(&flags.args) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("serve: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let rest_flags = Flags { args: rest };
            let mut sopts = ServeOptions {
                runner: ropts,
                ..ServeOptions::default()
            };
            if let Some(a) = rest_flags.value_of("--addr") {
                sopts.addr = a.to_string();
            }
            if let Some(v) = rest_flags.value_of("--max-clients") {
                match v.parse::<usize>() {
                    Ok(n) => sopts.max_clients = n,
                    Err(_) => {
                        eprintln!("serve: bad --max-clients value `{v}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Err(e) = sopts.validate() {
                eprintln!("serve: {e}");
                return ExitCode::FAILURE;
            }
            let server = match Server::bind(&sopts) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("serve: cannot bind {}: {e}", sopts.addr);
                    return ExitCode::FAILURE;
                }
            };
            install_sigint_handler();
            match server.local_addr() {
                Ok(addr) => eprintln!(
                    "serve: listening on {addr} (max {} clients)",
                    sopts.max_clients
                ),
                Err(e) => eprintln!("serve: listening ({e})"),
            }
            let state = server.run();
            eprintln!("serve: drained; {}", state.runner.telemetry().summary());
            ExitCode::SUCCESS
        }
        "submit" => {
            // Scriptable client: sends request lines from a file (or
            // stdin with `-`), prints one deterministic `data` line per
            // request on stdout; progress goes to stderr.
            let source = flags
                .args
                .first()
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str)
                .unwrap_or("-");
            let requests = if source == "-" {
                use std::io::Read as _;
                let mut s = String::new();
                if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                    eprintln!("submit: cannot read stdin: {e}");
                    return ExitCode::FAILURE;
                }
                s
            } else {
                match std::fs::read_to_string(source) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("submit: cannot read {source}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            let mut opts = SubmitOptions {
                quiet: flags.has("--quiet"),
                ..SubmitOptions::default()
            };
            if let Some(a) = flags.value_of("--addr") {
                opts.addr = a.to_string();
            }
            if let Some(p) = flags.value_of("--raw") {
                opts.raw = Some(p.to_string());
            }
            match submit(&opts, &requests, &mut std::io::stdout().lock()) {
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("submit: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "cache" => {
            // Inspect or clear the on-disk result cache the runner (and
            // the serve daemon) share.
            let dir = flags
                .value_of("--cache-dir")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(DiskCache::default_dir);
            let cache = match DiskCache::open(&dir) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cache: cannot open {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            };
            match flags.args.first().map(String::as_str) {
                Some("stats") => {
                    let usage = cache.usage();
                    println!(
                        "{}",
                        Json::obj()
                            .field("dir", dir.display().to_string().as_str())
                            .field("entries", usage.entries)
                            .field("bytes", usage.bytes)
                    );
                    ExitCode::SUCCESS
                }
                Some("clear") => match cache.clear() {
                    Ok(n) => {
                        eprintln!("cache: removed {n} entries from {}", dir.display());
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("cache: clear failed: {e}");
                        ExitCode::FAILURE
                    }
                },
                _ => usage(),
            }
        }
        "list" => {
            let mut t = Table::new(
                "The 22 synthetic SPEC2000-like benchmarks",
                &["name", "class", "kernels", "array words"],
            );
            for s in ppsim::compiler::spec2000_suite() {
                t.row(vec![
                    s.name.to_string(),
                    format!("{:?}", s.class),
                    s.kernels.len().to_string(),
                    s.array_words.to_string(),
                ]);
            }
            println!("{t}");
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
