//! `ppsim` — command-line front end for the simulator.
//!
//! ```text
//! ppsim run <file.s> [--scheme S] [--commits N] [--trace-events N] [--tiny]
//! ppsim compile <benchmark> [--ifconv] [--listing]
//! ppsim bench [benchmark] [--only a,b] [--commits N] [--json P] [--repeat N] [--phases] [--sample [SPEC]] [--trace FILE]
//! ppsim suite [--jobs N] [--no-cache] [--no-replay] [--no-fuse] [--cache-dir P] [--json P] [--commits N] [--only a,b] [--sample [SPEC]]
//! ppsim check [--seed S] [--iters N] [--fault F] [--dump DIR] [--jobs N] [--no-cache] [--sample-epsilon E] [--replay FILE.pisa]
//! ppsim trace export <benchmark> <out.pptrace> [--commits N] [--ifconv] [--note S]
//! ppsim trace import <file> [--commits N] [--top N] [--name S] [--json P] [--jobs N] [--no-cache] [--cache-dir P] [--no-fuse]
//! ppsim trace info <file.pptrace>
//! ppsim serve [--addr A] [--jobs N] [--max-clients N] [--cache-dir P] [--cache-max-bytes B]
//! ppsim submit [request.json|-] [--addr A] [--raw PATH] [--quiet]
//! ppsim cache stats|clear [--cache-dir P]
//! ppsim list
//! ```
//!
//! `run` executes a hand-written assembly file (the syntax printed by the
//! disassembler; see `ppsim::isa::parse_program`), `compile` builds one of
//! the 22 synthetic benchmarks and prints its listing or statistics,
//! `bench` measures the simulator's own throughput — every fig-6a cell
//! timed through both the inline machine and the trace-replay engine,
//! with the artifact written to `BENCH_sim.json`; `--repeat N` reports
//! the median and minimum of N timed repetitions, and `--phases` adds a
//! profiled pass attributing `process()` time to pipeline phases (or,
//! with `--sample`,
//! every cell run full-length *and* through the Pinpoint-style sampled
//! path, reporting misprediction error and wall-clock speedup; with
//! `--trace FILE`, solo-vs-fused identity over an imported stream) —
//! `suite` regenerates the paper's full evaluation through the parallel
//! runner (with `--sample`, through checkpointed sample windows),
//! `check` fuzzes the timing model against the architectural emulator
//! (the differential cosimulation oracle; `--sample-epsilon` adds the
//! sampled-simulation invariants, `--replay` re-runs one dumped repro
//! instead of fuzzing), `trace` moves workloads across the process
//! boundary (`export` captures a benchmark to a versioned `.pptrace`
//! file, `import` simulates a `.pptrace` or CBP-style `<ip> <taken>`
//! branch log and reports MPKI and top-N hard-to-predict branches,
//! `info` prints a file's header without decoding the body), `serve`
//! runs the persistent experiment daemon (shared warm state, request
//! dedup, streaming progress over NDJSON), `submit` is its scriptable
//! client (reads request lines from a file or stdin), `cache` inspects
//! or clears the on-disk result cache, and `list` prints the benchmark
//! suite. `SPEC` is `skip:warmup:measure:stride:count`; a bare
//! `--sample` uses the default schedule.
//!
//! Every subcommand rejects flags it does not understand, and
//! `--help`/`-h` prints usage and exits 0 before any work happens.

use std::process::ExitCode;

use ppsim::check::{replay_repro, run_check, CheckOptions};
use ppsim::compiler::{compile, CompileOptions};
use ppsim::core::{
    experiments, simbench, trace_report, DiskCache, ExperimentConfig, Json, Runner, RunnerOptions,
    SampleSpec, Table, TraceWorkload,
};
use ppsim::isa::{parse_program, Program, TraceBuffer};
use ppsim::pipeline::TestFault;
use ppsim::prelude::*;
use ppsim::serve::{install_sigint_handler, submit, ServeOptions, Server, SubmitOptions};

const FAULTS: &str = "invert-oracle|invert-early-resolve|share-ghr";

/// `a|b|c` listing of every registered scheme, derived from
/// [`SchemeSpec::ALL`] so the usage text can never lag the registry.
fn schemes_help() -> String {
    SchemeSpec::ALL
        .iter()
        .map(|s| s.name())
        .collect::<Vec<_>>()
        .join("|")
}

fn usage_text() -> String {
    let schemes = schemes_help();
    format!(
        "usage:\n  ppsim run <file.s> [--scheme {schemes}] [--commits N] [--trace-events N] [--tiny]\n  ppsim compile <benchmark> [--ifconv] [--listing]\n  ppsim bench [benchmark] [--only a,b] [--commits N] [--json PATH] [--repeat N] [--phases] [--sample [SPEC]] [--trace FILE]\n  ppsim suite [--jobs N] [--no-cache] [--no-replay] [--no-fuse] [--cache-dir PATH] [--json PATH] [--commits N] [--only a,b] [--sample [SPEC]]\n  ppsim check [--seed S] [--iters N] [--fault {FAULTS}] [--dump DIR] [--jobs N] [--no-cache] [--cache-dir PATH] [--sample-epsilon E] [--replay FILE.pisa]\n  ppsim trace export <benchmark> <out.pptrace> [--commits N] [--ifconv] [--note S]\n  ppsim trace import <file> [--commits N] [--top N] [--name S] [--json PATH] [--jobs N] [--no-cache] [--cache-dir PATH] [--no-fuse]\n  ppsim trace info <file.pptrace>\n  ppsim serve [--addr A] [--jobs N] [--max-clients N] [--cache-dir PATH] [--cache-max-bytes B]\n  ppsim submit [request.json|-] [--addr A] [--raw PATH] [--quiet]\n  ppsim cache stats|clear [--cache-dir PATH]\n  ppsim list\n(SPEC = skip:warmup:measure:stride:count; bare --sample = {}; trace import\n accepts .pptrace files and CBP-style `<ip> <taken>` branch logs)",
        SampleSpec::default_spec().canon()
    )
}

fn usage() -> ExitCode {
    eprintln!("{}", usage_text());
    ExitCode::FAILURE
}

/// `--help` path: usage on **stdout**, exit 0, no work performed.
fn help() -> ExitCode {
    println!("{}", usage_text());
    ExitCode::SUCCESS
}

/// How many arguments a flag consumes beyond itself.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Arity {
    /// A bare switch.
    Switch,
    /// Requires a value.
    Value,
    /// Takes a value when the next argument isn't a flag (`--sample`).
    OptionalValue,
}

/// The runner flags `RunnerOptions::from_args` consumes, for the
/// whitelists of subcommands that delegate to it.
const RUNNER_FLAGS: &[(&str, Arity)] = &[
    ("--jobs", Arity::Value),
    ("-j", Arity::Value),
    ("--no-cache", Arity::Switch),
    ("--cache-dir", Arity::Value),
    ("--cache-max-bytes", Arity::Value),
    ("--no-replay", Arity::Switch),
    ("--no-fuse", Arity::Switch),
];

/// Strict argument validation: every flag must appear in `spec`, and at
/// most `max_positionals` non-flag arguments are accepted. Runs before
/// any subcommand does work, so a typo'd flag can never silently start
/// a 200-program fuzz sweep.
fn reject_unknown(
    cmd: &str,
    args: &[String],
    spec: &[(&str, Arity)],
    max_positionals: usize,
) -> Result<(), String> {
    let mut positionals = 0usize;
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a.starts_with('-') && a != "-" {
            match spec.iter().find(|(name, _)| *name == a) {
                None => return Err(format!("unknown flag `{a}` (see `ppsim {cmd} --help`)")),
                Some((_, Arity::Switch)) => {}
                Some((_, Arity::Value)) => {
                    if i + 1 >= args.len() || args[i + 1].starts_with("--") {
                        return Err(format!("flag `{a}` needs a value"));
                    }
                    i += 1;
                }
                Some((_, Arity::OptionalValue)) => {
                    if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                        i += 1;
                    }
                }
            }
        } else {
            positionals += 1;
            if positionals > max_positionals {
                return Err(format!(
                    "unexpected argument `{a}` (see `ppsim {cmd} --help`)"
                ));
            }
        }
        i += 1;
    }
    Ok(())
}

struct Flags {
    args: Vec<String>,
}

impl Flags {
    fn value_of(&self, flag: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }
}

fn simulate(program: &Program, scheme: SchemeSpec, commits: u64, trace_events: usize, tiny: bool) {
    let core = if tiny {
        CoreConfig::tiny()
    } else {
        CoreConfig::paper()
    };
    let mut sim = SimOptions::new(scheme, PredicationModel::Selective)
        .core(core)
        .trace_events(trace_events)
        .build_source(ppsim::isa::Machine::new(program))
        .expect("no overrides supplied");
    let r = sim.run(commits);
    let s = &r.stats;
    if let Some(ring) = sim.events() {
        if ring.dropped() > 0 {
            println!("... {} earlier events dropped ...", ring.dropped());
        }
        for e in ring.events() {
            println!("{e}");
        }
    }
    println!(
        "{}: {} committed in {} cycles (IPC {:.3}){}",
        scheme.name(),
        s.committed,
        s.cycles,
        s.ipc(),
        if r.halted { ", halted" } else { "" }
    );
    println!(
        "  branches: {} conditional, {} mispredicted ({:.2}%), {:.2}% early-resolved",
        s.cond_branches,
        s.mispredicts,
        s.misprediction_rate() * 100.0,
        s.early_resolved_rate() * 100.0
    );
    println!(
        "  predication: {} nullified, {} cancelled, {} unguarded, {} flushes",
        s.nullified, s.cancelled_at_rename, s.unguarded_at_rename, s.predication_flushes
    );
    println!(
        "  memory: L1D {:.1}% miss, L2 {:.1}% miss, {} ITLB misses",
        s.mem.l1d.miss_ratio() * 100.0,
        s.mem.l2.miss_ratio() * 100.0,
        s.mem.itlb.1
    );
    let total = s.stall.total().max(1) as f64;
    println!(
        "  stalls: {}",
        StallBucket::ALL
            .iter()
            .map(|&b| format!("{} {:.1}%", b.name(), s.stall.get(b) as f64 / total * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    );
}

/// Parses `--sample [SPEC]`: absent → `None`, bare or `default` → the
/// default schedule, otherwise `skip:warmup:measure:stride:count`.
fn sample_flag(flags: &Flags) -> Result<Option<SampleSpec>, String> {
    if !flags.has("--sample") {
        return Ok(None);
    }
    match flags.value_of("--sample").filter(|v| !v.starts_with("--")) {
        None | Some("default") => Ok(Some(SampleSpec::default_spec())),
        Some(v) => SampleSpec::parse(v).map(Some).map_err(|e| e.to_string()),
    }
}

fn find_benchmark(name: &str) -> Option<ppsim::compiler::WorkloadSpec> {
    ppsim::compiler::spec2000_suite()
        .into_iter()
        .find(|s| s.name == name)
}

/// Loads an external trace file, auto-detecting the format: files that
/// open with the `.pptrace` magic decode through the versioned codec;
/// anything else is treated as a CBP-style `<ip> <taken>` branch log.
/// Returns the workload and the CBP import summary when applicable.
fn load_trace_workload(
    path: &str,
    name_override: Option<&str>,
) -> Result<(TraceWorkload, Option<ppsim::isa::CbpSummary>), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if bytes.starts_with(&ppsim::isa::pptrace::MAGIC) {
        let mut w =
            TraceWorkload::from_pptrace_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
        if let Some(name) = name_override {
            w.name = name.to_string();
        }
        return Ok((w, None));
    }
    let text = String::from_utf8(bytes)
        .map_err(|_| format!("{path}: neither a .pptrace file nor UTF-8 CBP text"))?;
    let name = name_override.map(str::to_string).unwrap_or_else(|| {
        std::path::Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "import".to_string())
    });
    let (w, summary) =
        TraceWorkload::from_cbp_text(name, &text).map_err(|e| format!("{path}: {e}"))?;
    Ok((w, Some(summary)))
}

/// `ppsim trace export|import|info` — moving workloads across the
/// process boundary through the versioned `.pptrace` format.
fn trace_cmd(flags: &Flags, commits: u64) -> ExitCode {
    let verb = flags
        .args
        .first()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str);
    let rest = Flags {
        args: flags.args.iter().skip(1).cloned().collect(),
    };
    match verb {
        Some("export") => {
            if let Err(e) = reject_unknown(
                "trace",
                &rest.args,
                &[
                    ("--commits", Arity::Value),
                    ("--ifconv", Arity::Switch),
                    ("--note", Arity::Value),
                ],
                2,
            ) {
                eprintln!("trace export: {e}");
                return usage();
            }
            // Skip over flag values when collecting positionals: the two
            // remaining non-flag tokens are <benchmark> <out.pptrace>.
            let mut pos = Vec::new();
            let mut i = 0;
            while i < rest.args.len() {
                let a = rest.args[i].as_str();
                if a == "--commits" || a == "--note" {
                    i += 2;
                    continue;
                }
                if !a.starts_with("--") {
                    pos.push(a);
                }
                i += 1;
            }
            let (Some(name), Some(out)) = (pos.first().copied(), pos.get(1).copied()) else {
                eprintln!("trace export: expected <benchmark> <out.pptrace>");
                return usage();
            };
            let Some(spec) = find_benchmark(name) else {
                eprintln!("trace export: unknown benchmark `{name}` (try `ppsim list`)");
                return ExitCode::FAILURE;
            };
            let opts = if rest.has("--ifconv") {
                CompileOptions::with_ifconv()
            } else {
                CompileOptions::no_ifconv()
            };
            let compiled = compile(&spec, &opts).expect("suite benchmarks compile");
            let buf = match TraceBuffer::capture(&compiled.program, commits) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("trace export: capture failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let note = rest.value_of("--note").unwrap_or("").to_string();
            let w = TraceWorkload::from_capture(name, note, buf);
            let bytes = w.export_bytes();
            if let Err(e) = std::fs::write(out, &bytes) {
                eprintln!("trace export: failed to write {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "trace export: wrote {out} ({} records, {} bytes)",
                w.records(),
                bytes.len()
            );
            ExitCode::SUCCESS
        }
        Some("import") => {
            let (ropts, runner_rest) = match RunnerOptions::from_args(&rest.args) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("trace import: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let rest = Flags { args: runner_rest };
            if let Err(e) = reject_unknown(
                "trace",
                &rest.args,
                &[
                    ("--commits", Arity::Value),
                    ("--top", Arity::Value),
                    ("--name", Arity::Value),
                    ("--json", Arity::Value),
                ],
                1,
            ) {
                eprintln!("trace import: {e}");
                return usage();
            }
            let Some(path) = rest.args.first().filter(|a| !a.starts_with("--")) else {
                eprintln!("trace import: expected a trace file");
                return usage();
            };
            let (w, summary) = match load_trace_workload(path, rest.value_of("--name")) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("trace import: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(s) = &summary {
                eprintln!(
                    "trace import: CBP log — {} branches ({} taken) over {} static sites",
                    s.branches, s.taken, s.static_branches
                );
            }
            let top: usize = match rest.value_of("--top").map(str::parse) {
                None => 10,
                Some(Ok(n)) => n,
                Some(Err(_)) => {
                    eprintln!("trace import: bad --top value");
                    return ExitCode::FAILURE;
                }
            };
            let cfg = ExperimentConfig {
                commits,
                ..ExperimentConfig::default()
            };
            let runner = Runner::new(ropts);
            let report = trace_report(&runner, &cfg, &w, top);
            print!("{}", report.text());
            if let Some(out) = rest.value_of("--json") {
                let doc = Json::obj()
                    .field("experiment", "trace-import")
                    .field("data", report.to_json())
                    .field("telemetry", runner.telemetry().to_json());
                if let Err(e) = std::fs::write(out, format!("{doc}\n")) {
                    eprintln!("trace import: failed to write {out}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("trace import: wrote {out}");
            }
            eprintln!("trace import: {}", runner.telemetry().summary());
            ExitCode::SUCCESS
        }
        Some("info") => {
            if let Err(e) = reject_unknown("trace", &rest.args, &[], 1) {
                eprintln!("trace info: {e}");
                return usage();
            }
            let Some(path) = rest.args.first() else {
                eprintln!("trace info: expected a .pptrace file");
                return usage();
            };
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("trace info: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match ppsim::isa::pptrace::peek_meta(&bytes) {
                Ok(meta) => {
                    println!(
                        "{}",
                        Json::obj()
                            .field("name", meta.name.as_str())
                            .field("note", meta.note.as_str())
                            .field("halted", meta.halted)
                            .field("branches_only", meta.branches_only)
                            .field("records", meta.records)
                            .field("static_insns", meta.static_insns)
                            .field("addrs", meta.addrs)
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("trace info: {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("trace: expected a verb: export | import | info");
            usage()
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };
    let flags = Flags {
        args: args[1..].to_vec(),
    };
    // `--help` anywhere wins before any parsing or work: `ppsim check
    // --help` must never start a fuzz sweep.
    if cmd == "--help" || cmd == "-h" || cmd == "help" || flags.has("--help") || flags.has("-h") {
        return help();
    }
    let commits: u64 = flags
        .value_of("--commits")
        .and_then(|v| v.parse().ok())
        .unwrap_or(500_000);

    match cmd.as_str() {
        "run" => {
            if let Err(e) = reject_unknown(
                "run",
                &flags.args,
                &[
                    ("--scheme", Arity::Value),
                    ("--commits", Arity::Value),
                    ("--trace-events", Arity::Value),
                    ("--trace", Arity::Value),
                    ("--tiny", Arity::Switch),
                ],
                1,
            ) {
                eprintln!("run: {e}");
                return usage();
            }
            let Some(path) = flags.args.first().filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let program = match parse_program(&source) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let scheme = match flags.value_of("--scheme") {
                None => SchemeSpec::Predicate,
                Some(s) => match SchemeSpec::parse(s) {
                    Some(k) => k,
                    None => {
                        eprintln!("unknown scheme `{s}` (expected {})", schemes_help());
                        return ExitCode::FAILURE;
                    }
                },
            };
            // `--trace` kept as an alias for one release.
            let trace_events = flags
                .value_of("--trace-events")
                .or_else(|| flags.value_of("--trace"))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            simulate(&program, scheme, commits, trace_events, flags.has("--tiny"));
            ExitCode::SUCCESS
        }
        "compile" => {
            if let Err(e) = reject_unknown(
                "compile",
                &flags.args,
                &[("--ifconv", Arity::Switch), ("--listing", Arity::Switch)],
                1,
            ) {
                eprintln!("compile: {e}");
                return usage();
            }
            let Some(name) = flags.args.first().filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            let Some(spec) = find_benchmark(name) else {
                eprintln!("unknown benchmark `{name}` (try `ppsim suite`)");
                return ExitCode::FAILURE;
            };
            let opts = if flags.has("--ifconv") {
                CompileOptions::with_ifconv()
            } else {
                CompileOptions::no_ifconv()
            };
            let compiled = compile(&spec, &opts).expect("suite benchmarks compile");
            if flags.has("--listing") {
                print!("{}", compiled.program.listing());
            }
            eprintln!(
                "{name}: {} instructions, {} conditional branches, {} compares{}",
                compiled.program.len(),
                compiled.program.count_insns(|i| i.is_cond_branch()),
                compiled.program.count_insns(|i| i.is_cmp()),
                compiled
                    .ifconvert
                    .map(|s| format!(", {} branches if-converted", s.converted))
                    .unwrap_or_default()
            );
            ExitCode::SUCCESS
        }
        "bench" => {
            // Simulator-throughput benchmark: every fig-6a cell timed
            // through the inline machine AND the trace-replay engine.
            // Exit code 1 if any cell's statistics diverge between the
            // two paths (the bit-identity guarantee the replay engine
            // rests on). With `--trace FILE`, times an imported stream
            // solo-vs-fused instead (no inline machine exists there).
            if let Err(e) = reject_unknown(
                "bench",
                &flags.args,
                &[
                    ("--only", Arity::Value),
                    ("--commits", Arity::Value),
                    ("--json", Arity::Value),
                    ("--sample", Arity::OptionalValue),
                    ("--trace", Arity::Value),
                    ("--repeat", Arity::Value),
                    ("--phases", Arity::Switch),
                ],
                1,
            ) {
                eprintln!("bench: {e}");
                return usage();
            }
            // --repeat / --phases belong to the grid bench; the sampled
            // and imported-trace variants time a different schedule, so
            // silently ignoring the flags there would misreport.
            let repeat = match flags.value_of("--repeat") {
                None => 1u32,
                Some(v) => match v.parse::<u32>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("bench: --repeat expects an integer >= 1, got `{v}`");
                        return ExitCode::FAILURE;
                    }
                },
            };
            let phases = flags.has("--phases");
            if (repeat > 1 || phases)
                && (flags.value_of("--trace").is_some() || flags.has("--sample"))
            {
                eprintln!(
                    "bench: --repeat/--phases apply to the grid bench only, not --sample/--trace"
                );
                return ExitCode::FAILURE;
            }
            if let Some(path) = flags.value_of("--trace") {
                let (w, _) = match load_trace_workload(path, None) {
                    Ok(v) => v,
                    Err(e) => {
                        eprintln!("bench: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let report = simbench::run_trace(&w.name, w.buf.clone(), commits);
                let out = flags.value_of("--json").unwrap_or("BENCH_trace.json");
                if let Err(e) = std::fs::write(out, format!("{}\n", report.to_json())) {
                    eprintln!("bench: failed to write {out}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("bench: wrote {out}");
                println!("bench: {}", report.summary());
                return if report.fused_identical {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
            }
            let mut cfg = simbench::BenchConfig {
                commits,
                repeat,
                phases,
                ..simbench::BenchConfig::default()
            };
            if let Some(name) = flags.args.first().filter(|a| !a.starts_with("--")) {
                if find_benchmark(name).is_none() {
                    eprintln!("unknown benchmark `{name}` (try `ppsim list`)");
                    return ExitCode::FAILURE;
                }
                cfg.only = vec![name.clone()];
            }
            if let Some(v) = flags.value_of("--only") {
                cfg.only = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            match sample_flag(&flags) {
                Err(e) => {
                    eprintln!("bench: {e}");
                    return ExitCode::FAILURE;
                }
                Ok(Some(spec)) => {
                    // Sampled-vs-full comparison: how much accuracy the
                    // schedule gives up and how much wall time it saves.
                    let report = simbench::run_sampled(&cfg, spec);
                    let path = flags.value_of("--json").unwrap_or("BENCH_sample.json");
                    if let Err(e) = std::fs::write(path, format!("{}\n", report.to_json())) {
                        eprintln!("bench: failed to write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("bench: wrote {path}");
                    println!("bench: {}", report.summary());
                    return ExitCode::SUCCESS;
                }
                Ok(None) => {}
            }
            let report = simbench::run(&cfg);
            let path = flags.value_of("--json").unwrap_or("BENCH_sim.json");
            if let Err(e) = std::fs::write(path, format!("{}\n", report.to_json())) {
                eprintln!("bench: failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("bench: wrote {path}");
            println!("bench: {}", report.summary());
            if report.reports_identical() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "suite" => {
            // Full paper evaluation through the parallel, cache-aware
            // runner. The stdout report is deterministic — identical for
            // any --jobs value and cache state; telemetry goes to stderr
            // and the optional --json artifact.
            let mut spec: Vec<(&str, Arity)> = RUNNER_FLAGS.to_vec();
            spec.extend([
                ("--json", Arity::Value),
                ("--commits", Arity::Value),
                ("--only", Arity::Value),
                ("--sample", Arity::OptionalValue),
            ]);
            if let Err(e) = reject_unknown("suite", &flags.args, &spec, 0) {
                eprintln!("suite: {e}");
                return usage();
            }
            let (opts, rest) = match RunnerOptions::from_args(&flags.args) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("suite: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let rest_flags = Flags { args: rest };
            let mut cfg = ExperimentConfig::from_env();
            if let Some(v) = rest_flags.value_of("--commits") {
                match v.parse() {
                    Ok(n) => cfg.commits = n,
                    Err(_) => {
                        eprintln!("suite: bad --commits value `{v}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Some(v) = rest_flags.value_of("--only") {
                cfg.only = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            match sample_flag(&rest_flags) {
                Err(e) => {
                    eprintln!("suite: {e}");
                    return ExitCode::FAILURE;
                }
                Ok(Some(spec)) => cfg.sample = Some(spec),
                Ok(None) => {}
            }
            let runner = Runner::new(opts);
            // One deduplicated grid pass feeds both the text report and
            // the --json artifact.
            let results = experiments::full_results(&runner, &cfg);
            print!("{}", results.report_text(&cfg));
            if let Some(path) = rest_flags.value_of("--json") {
                // Telemetry sits beside (not inside) the deterministic
                // `data` object: stripping it yields byte-identical
                // artifacts across cache states and worker counts.
                let doc = Json::obj()
                    .field("experiment", "suite")
                    .field("commits", cfg.commits)
                    .field("data", results.report_json(&cfg))
                    .field("telemetry", runner.telemetry().to_json());
                if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                    eprintln!("suite: failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("suite: wrote {path}");
            }
            eprintln!("suite: {}", runner.telemetry().summary());
            ExitCode::SUCCESS
        }
        "check" => {
            // Differential cosimulation: fuzz the timing model against
            // the architectural emulator across every scheme ×
            // predication cell. Exit code 1 on any divergence. With
            // `--replay FILE.pisa`, re-runs one dumped repro through the
            // oracle that recorded it instead of fuzzing.
            let mut spec: Vec<(&str, Arity)> = RUNNER_FLAGS.to_vec();
            spec.extend([
                ("--seed", Arity::Value),
                ("--iters", Arity::Value),
                ("--fault", Arity::Value),
                ("--dump", Arity::Value),
                ("--sample-epsilon", Arity::Value),
                ("--replay", Arity::Value),
            ]);
            if let Err(e) = reject_unknown("check", &flags.args, &spec, 0) {
                eprintln!("check: {e}");
                return usage();
            }
            let (ropts, rest) = match RunnerOptions::from_args(&flags.args) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("check: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let rest_flags = Flags { args: rest };
            let parse_u64 = |v: &str| -> Option<u64> {
                match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(h) => u64::from_str_radix(h, 16).ok(),
                    None => v.parse().ok(),
                }
            };
            let fault = match rest_flags.value_of("--fault") {
                None => None,
                Some("invert-oracle") => Some(TestFault::InvertOracle),
                Some("invert-early-resolve") => Some(TestFault::InvertEarlyResolve),
                Some("share-ghr") => Some(TestFault::ShareGhr),
                Some(other) => {
                    eprintln!("check: unknown --fault `{other}` (expected {FAULTS})");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(path) = rest_flags.value_of("--replay") {
                let source = match std::fs::read_to_string(path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("check: cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let out = match replay_repro(&source, fault) {
                    Ok(o) => o,
                    Err(e) => {
                        eprintln!("check: {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match &out.header {
                    Some(h) => eprintln!(
                        "check: replaying {path} (seed {:#x} iter {} form {} cell {})",
                        h.seed, h.iter, h.form, h.cell
                    ),
                    None => eprintln!("check: replaying {path} (no repro header: full sweep)"),
                }
                return match out.divergence {
                    None => {
                        println!("check: repro passes ({} cell(s) verified)", out.checks);
                        ExitCode::SUCCESS
                    }
                    Some(d) => {
                        println!("check: repro still diverges: {d}");
                        ExitCode::FAILURE
                    }
                };
            }
            let mut opts = CheckOptions {
                jobs: ropts.jobs,
                use_cache: ropts.cache,
                cache_dir: ropts.cache_dir.map(|d| d.join("check")),
                dump_dir: Some(std::path::PathBuf::from(
                    rest_flags.value_of("--dump").unwrap_or("check-failures"),
                )),
                fault,
                ..CheckOptions::default()
            };
            if let Some(v) = rest_flags.value_of("--seed") {
                match parse_u64(v) {
                    Some(s) => opts.seed = s,
                    None => {
                        eprintln!("check: bad --seed value `{v}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Some(v) = rest_flags.value_of("--iters") {
                match v.parse() {
                    Ok(n) => opts.iters = n,
                    Err(_) => {
                        eprintln!("check: bad --iters value `{v}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Some(v) = rest_flags.value_of("--sample-epsilon") {
                match v.parse::<f64>() {
                    Ok(e) if e.is_finite() && e >= 0.0 => opts.sample_epsilon = Some(e),
                    _ => {
                        eprintln!("check: bad --sample-epsilon value `{v}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let report = run_check(&opts);
            if !report.passed() {
                print!("{}", report.table());
                for f in &report.findings {
                    if let Some(p) = &f.repro_path {
                        eprintln!("check: repro written to {}", p.display());
                    }
                }
            }
            println!("check: {}", report.summary());
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "trace" => trace_cmd(&flags, commits),
        "serve" => {
            // The persistent experiment daemon: one warm runner for the
            // process lifetime, NDJSON requests over TCP, graceful
            // drain on SIGINT or a `shutdown` request.
            let mut spec: Vec<(&str, Arity)> = RUNNER_FLAGS.to_vec();
            spec.extend([("--addr", Arity::Value), ("--max-clients", Arity::Value)]);
            if let Err(e) = reject_unknown("serve", &flags.args, &spec, 0) {
                eprintln!("serve: {e}");
                return usage();
            }
            let (ropts, rest) = match RunnerOptions::from_args(&flags.args) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("serve: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let rest_flags = Flags { args: rest };
            let mut sopts = ServeOptions {
                runner: ropts,
                ..ServeOptions::default()
            };
            if let Some(a) = rest_flags.value_of("--addr") {
                sopts.addr = a.to_string();
            }
            if let Some(v) = rest_flags.value_of("--max-clients") {
                match v.parse::<usize>() {
                    Ok(n) => sopts.max_clients = n,
                    Err(_) => {
                        eprintln!("serve: bad --max-clients value `{v}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Err(e) = sopts.validate() {
                eprintln!("serve: {e}");
                return ExitCode::FAILURE;
            }
            let server = match Server::bind(&sopts) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("serve: cannot bind {}: {e}", sopts.addr);
                    return ExitCode::FAILURE;
                }
            };
            install_sigint_handler();
            match server.local_addr() {
                Ok(addr) => eprintln!(
                    "serve: listening on {addr} (max {} clients)",
                    sopts.max_clients
                ),
                Err(e) => eprintln!("serve: listening ({e})"),
            }
            let state = server.run();
            eprintln!("serve: drained; {}", state.runner.telemetry().summary());
            ExitCode::SUCCESS
        }
        "submit" => {
            // Scriptable client: sends request lines from a file (or
            // stdin with `-`), prints one deterministic `data` line per
            // request on stdout; progress goes to stderr.
            if let Err(e) = reject_unknown(
                "submit",
                &flags.args,
                &[
                    ("--addr", Arity::Value),
                    ("--raw", Arity::Value),
                    ("--quiet", Arity::Switch),
                ],
                1,
            ) {
                eprintln!("submit: {e}");
                return usage();
            }
            let source = flags
                .args
                .first()
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str)
                .unwrap_or("-");
            let requests = if source == "-" {
                use std::io::Read as _;
                let mut s = String::new();
                if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                    eprintln!("submit: cannot read stdin: {e}");
                    return ExitCode::FAILURE;
                }
                s
            } else {
                match std::fs::read_to_string(source) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("submit: cannot read {source}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            let mut opts = SubmitOptions {
                quiet: flags.has("--quiet"),
                ..SubmitOptions::default()
            };
            if let Some(a) = flags.value_of("--addr") {
                opts.addr = a.to_string();
            }
            if let Some(p) = flags.value_of("--raw") {
                opts.raw = Some(p.to_string());
            }
            match submit(&opts, &requests, &mut std::io::stdout().lock()) {
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("submit: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "cache" => {
            // Inspect or clear the on-disk result cache the runner (and
            // the serve daemon) share.
            if let Err(e) =
                reject_unknown("cache", &flags.args, &[("--cache-dir", Arity::Value)], 1)
            {
                eprintln!("cache: {e}");
                return usage();
            }
            let dir = flags
                .value_of("--cache-dir")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(DiskCache::default_dir);
            let cache = match DiskCache::open(&dir) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cache: cannot open {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            };
            match flags.args.first().map(String::as_str) {
                Some("stats") => {
                    let usage = cache.usage();
                    println!(
                        "{}",
                        Json::obj()
                            .field("dir", dir.display().to_string().as_str())
                            .field("entries", usage.entries)
                            .field("bytes", usage.bytes)
                    );
                    ExitCode::SUCCESS
                }
                Some("clear") => match cache.clear() {
                    Ok(n) => {
                        eprintln!("cache: removed {n} entries from {}", dir.display());
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("cache: clear failed: {e}");
                        ExitCode::FAILURE
                    }
                },
                _ => usage(),
            }
        }
        "list" => {
            if let Err(e) = reject_unknown("list", &flags.args, &[], 0) {
                eprintln!("list: {e}");
                return usage();
            }
            let mut t = Table::new(
                "The 22 synthetic SPEC2000-like benchmarks",
                &["name", "class", "kernels", "array words"],
            );
            for s in ppsim::compiler::spec2000_suite() {
                t.row(vec![
                    s.name.to_string(),
                    format!("{:?}", s.class),
                    s.kernels.len().to_string(),
                    s.array_words.to_string(),
                ]);
            }
            println!("{t}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    }
}
